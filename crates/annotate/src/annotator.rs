//! The simulated human annotator.
//!
//! Walks [`EvaluationTask`]s charging the cost model's `c1` for each *newly
//! identified* entity and `c2` for each *newly validated* triple; both are
//! memoized, so the accumulated cost is exactly `Cost(G') = |E'|·c1 +
//! |G'|·c2` over the distinct annotated sample `G'` no matter how draws are
//! batched or repeated (WCS draws clusters with replacement; reservoir
//! updates re-visit clusters — none of that may double-charge a human).

use crate::cost::CostModel;
use crate::oracle::LabelOracle;
use crate::task::group_into_tasks;
use kg_model::triple::TripleRef;
use std::collections::{HashMap, HashSet};

/// A simulated annotator: label source + cost accounting + memoization.
pub struct SimulatedAnnotator<'a> {
    oracle: &'a dyn LabelOracle,
    cost: CostModel,
    identified: HashSet<u32>,
    labeled: HashMap<TripleRef, bool>,
    seconds: f64,
    timeline: Vec<TimelinePoint>,
    record_timeline: bool,
}

/// One point on the cumulative annotation timeline (Fig. 1): after
/// validating `triple`, the cumulative time was `seconds`; `new_entity` is
/// true when this triple required identifying its entity first (the solid
/// markers in Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// The triple just validated.
    pub triple: TripleRef,
    /// Cumulative seconds after validating it.
    pub seconds: f64,
    /// Whether entity identification was charged for this triple.
    pub new_entity: bool,
}

impl<'a> SimulatedAnnotator<'a> {
    /// New annotator over an oracle with a cost model.
    pub fn new(oracle: &'a dyn LabelOracle, cost: CostModel) -> Self {
        SimulatedAnnotator {
            oracle,
            cost,
            identified: HashSet::new(),
            labeled: HashMap::new(),
            seconds: 0.0,
            timeline: Vec::new(),
            record_timeline: false,
        }
    }

    /// Enable per-triple timeline recording (used by the Fig. 1
    /// experiment; off by default to keep 1000-trial runs lean).
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Annotate a batch of sampled triples, grouped into per-entity
    /// evaluation tasks. Returns the labels in the order of `refs`.
    pub fn annotate(&mut self, refs: &[TripleRef]) -> Vec<bool> {
        // Process grouped (per-entity) to model the real task flow; memoize
        // so repeats are free.
        for task in group_into_tasks(refs) {
            let mut first_of_entity = self.identified.insert(task.cluster);
            if first_of_entity {
                self.seconds += self.cost.c1;
            }
            for r in task.refs() {
                if self.labeled.contains_key(&r) {
                    first_of_entity = false;
                    continue;
                }
                let label = self.oracle.label(r);
                self.labeled.insert(r, label);
                self.seconds += self.cost.c2;
                if self.record_timeline {
                    self.timeline.push(TimelinePoint {
                        triple: r,
                        seconds: self.seconds,
                        new_entity: first_of_entity,
                    });
                }
                first_of_entity = false;
            }
        }
        refs.iter()
            .map(|r| *self.labeled.get(r).expect("just annotated"))
            .collect()
    }

    /// Annotate one triple (convenience for baselines that select triples
    /// one at a time, like KGEval).
    pub fn annotate_one(&mut self, r: TripleRef) -> bool {
        self.annotate(std::slice::from_ref(&r))[0]
    }

    /// Cumulative human seconds charged so far.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Cumulative human hours (the paper's reporting unit).
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }

    /// Distinct entities identified so far (`|E'|`).
    pub fn entities_identified(&self) -> usize {
        self.identified.len()
    }

    /// Distinct triples validated so far (`|G'|`).
    pub fn triples_annotated(&self) -> usize {
        self.labeled.len()
    }

    /// The recorded timeline (empty unless enabled).
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GoldLabels;

    fn oracle() -> GoldLabels {
        GoldLabels::new(vec![
            vec![true, false, true], // cluster 0
            vec![true],              // cluster 1
            vec![false, false],      // cluster 2
        ])
    }

    #[test]
    fn cost_is_distinct_entities_and_triples() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0));
        let labels = a.annotate(&[
            TripleRef::new(0, 0),
            TripleRef::new(0, 1),
            TripleRef::new(1, 0),
        ]);
        assert_eq!(labels, vec![true, false, true]);
        assert_eq!(a.entities_identified(), 2);
        assert_eq!(a.triples_annotated(), 3);
        assert!((a.seconds() - (2.0 * 45.0 + 3.0 * 25.0)).abs() < 1e-9);
        assert!((a.hours() * 3600.0 - a.seconds()).abs() < 1e-9);
    }

    #[test]
    fn repeats_are_free() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::default());
        a.annotate(&[TripleRef::new(0, 0)]);
        let before = a.seconds();
        let labels = a.annotate(&[TripleRef::new(0, 0), TripleRef::new(0, 0)]);
        assert_eq!(labels, vec![true, true]);
        assert_eq!(a.seconds(), before);
        assert_eq!(a.triples_annotated(), 1);
    }

    #[test]
    fn second_visit_to_entity_skips_identification() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0));
        a.annotate(&[TripleRef::new(0, 0)]);
        a.annotate(&[TripleRef::new(0, 2)]); // same entity, later batch
        assert_eq!(a.entities_identified(), 1);
        assert!((a.seconds() - (45.0 + 2.0 * 25.0)).abs() < 1e-9);
    }

    #[test]
    fn cost_invariant_to_batching_and_order() {
        let o = oracle();
        let all = [
            TripleRef::new(0, 0),
            TripleRef::new(0, 1),
            TripleRef::new(1, 0),
            TripleRef::new(2, 0),
            TripleRef::new(2, 1),
        ];
        let mut one = SimulatedAnnotator::new(&o, CostModel::default());
        one.annotate(&all);

        let mut parts = SimulatedAnnotator::new(&o, CostModel::default());
        let mut shuffled = all;
        shuffled.reverse();
        for r in shuffled {
            parts.annotate_one(r);
        }
        assert_eq!(one.seconds(), parts.seconds());
        assert_eq!(one.entities_identified(), parts.entities_identified());
        assert_eq!(one.triples_annotated(), parts.triples_annotated());
    }

    #[test]
    fn timeline_records_entity_boundaries() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0)).with_timeline();
        a.annotate(&[
            TripleRef::new(0, 0),
            TripleRef::new(0, 1),
            TripleRef::new(1, 0),
        ]);
        let tl = a.timeline();
        assert_eq!(tl.len(), 3);
        assert!(tl[0].new_entity);
        assert!(!tl[1].new_entity);
        assert!(tl[2].new_entity);
        // Cumulative times: 70, 95, 165.
        assert!((tl[0].seconds - 70.0).abs() < 1e-9);
        assert!((tl[1].seconds - 95.0).abs() < 1e-9);
        assert!((tl[2].seconds - 165.0).abs() < 1e-9);
        // Monotone.
        assert!(tl.windows(2).all(|w| w[0].seconds < w[1].seconds));
    }

    #[test]
    fn timeline_off_by_default() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::default());
        a.annotate(&[TripleRef::new(0, 0)]);
        assert!(a.timeline().is_empty());
        assert_eq!(a.cost_model(), CostModel::default());
    }
}

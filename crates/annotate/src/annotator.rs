//! The simulated human annotator.
//!
//! Walks [`EvaluationTask`](crate::task::EvaluationTask)s charging the cost
//! model's `c1` for each *newly identified* entity and `c2` for each *newly
//! validated* triple; both are memoized, so the accumulated cost is exactly
//! `Cost(G') = |E'|·c1 + |G'|·c2` over the distinct annotated sample `G'` no
//! matter how draws are batched or repeated (WCS draws clusters with
//! replacement; reservoir updates re-visit clusters — none of that may
//! double-charge a human).
//!
//! Two engines implement the [`Annotator`] trait:
//!
//! * [`SimulatedAnnotator`] (this module) — the hash-based reference:
//!   memoization via `HashMap`/`HashSet`, labels pulled from a
//!   `&dyn LabelOracle` per triple. Always correct, works over any oracle,
//!   and the only engine that records per-triple timelines (Fig. 1).
//! * [`DenseAnnotator`](crate::dense::DenseAnnotator) — the zero-allocation
//!   fast path: labels pre-materialized into a
//!   [`LabelStore`](crate::label_store::LabelStore) bitset, memoization via
//!   epoch-stamped dense arrays with an O(1) reset between trials.
//!
//! Both charge from the same memo counts, so their reported costs are
//! byte-identical on identical draw sequences (see
//! `crates/sampling/tests/dense_equivalence.rs`).

use crate::cost::CostModel;
use crate::oracle::LabelOracle;
use crate::task::group_into_tasks;
use kg_model::retract::{map_live_offset, Retraction, TombstoneMap};
use kg_model::triple::TripleRef;
use kg_model::update::UpdateBatch;
use std::collections::{HashMap, HashSet};

/// The annotation engine interface shared by the hash-based
/// [`SimulatedAnnotator`] and the dense
/// [`DenseAnnotator`](crate::dense::DenseAnnotator).
///
/// All methods memoize: an entity is identified (cost `c1`) at most once, a
/// triple is validated (cost `c2`) at most once, and repeats are free. The
/// batch methods are allocation-free on the implementor's side — callers
/// provide scratch buffers where output vectors are needed.
pub trait Annotator {
    /// Annotate a batch of sampled triples, writing labels into `out` in
    /// the order of `refs` (`out` is cleared first).
    fn annotate_into(&mut self, refs: &[TripleRef], out: &mut Vec<bool>);

    /// [`Annotator::annotate_into`] with the caller's already-computed
    /// global triple indices alongside (`globals[i]` must address
    /// `refs[i]`). Engines that address memory by global index (the dense
    /// arena) skip re-deriving it from the prefix sums; others ignore the
    /// hint — this default does exactly that.
    fn annotate_indexed_into(&mut self, refs: &[TripleRef], globals: &[u64], out: &mut Vec<bool>) {
        debug_assert_eq!(refs.len(), globals.len());
        self.annotate_into(refs, out);
    }

    /// Annotate one triple (baselines that select triples one at a time).
    fn annotate_one(&mut self, r: TripleRef) -> bool;

    /// Annotate every triple of one cluster of known `size`, returning the
    /// number of correct triples `τ` in it.
    fn annotate_cluster(&mut self, cluster: u32, size: usize) -> u32;

    /// [`Annotator::annotate_cluster`] with the cluster's global `base`
    /// offset supplied by the caller (must equal the engine's own notion of
    /// the cluster's first triple index). PPS draw loops get the base from
    /// the alias slot they already loaded; an engine that addresses its
    /// arena by global index (the dense engine) can then stamp
    /// `[base, base + size)` without first chaining a dependent
    /// cluster-directory load. Engines with no use for the hint ignore it —
    /// this default does exactly that.
    fn annotate_cluster_sited(&mut self, cluster: u32, base: u64, size: usize) -> u32 {
        let _ = base;
        self.annotate_cluster(cluster, size)
    }

    /// Annotate a subset of one cluster given by triple `offsets`,
    /// returning the number of correct triples among them.
    fn annotate_offsets(&mut self, cluster: u32, offsets: &[usize]) -> u32;

    /// Cumulative human seconds charged so far (`|E'|·c1 + |G'|·c2`).
    fn seconds(&self) -> f64;

    /// Cumulative human hours (the paper's reporting unit).
    fn hours(&self) -> f64 {
        self.seconds() / 3600.0
    }

    /// Distinct entities identified so far (`|E'|`).
    fn entities_identified(&self) -> usize;

    /// Distinct triples validated so far (`|G'|`).
    fn triples_annotated(&self) -> usize;

    /// Observe one evolving-KG update batch **before** any of its
    /// delta-minted cluster ids are annotated. `first_cluster` is the id
    /// the batch's first `Δe` group receives (ids are assigned
    /// positionally, as in `UpdateBatch::apply_to`).
    ///
    /// The §6 incremental evaluators call this at the top of
    /// `apply_update`, which is what makes them engine-agnostic: engines
    /// that consult a live oracle per triple (the hash
    /// [`SimulatedAnnotator`]) need no preparation — this default no-op —
    /// while engines with materialized label state (the dense arena) grow
    /// it here. Implementations must be idempotent for a batch whose ids
    /// the engine already covers, so deterministic replays over a
    /// pre-evolved label store are free.
    fn extend_population(&mut self, first_cluster: u32, delta: &UpdateBatch) {
        let _ = (first_cluster, delta);
    }

    /// Observe a retraction of triples **before** any post-retraction
    /// annotation of the touched clusters.
    ///
    /// After this call the offset-based APIs ([`Annotator::annotate_cluster`],
    /// [`Annotator::annotate_offsets`]) address the touched clusters in
    /// **live** coordinates — offset `o` means the `o`-th *surviving*
    /// triple — and engines translate to raw storage positions via
    /// `kg_model::retract::map_live_offset`. Clusters without tombstones
    /// keep the identity mapping, so insert-only callers are unaffected.
    /// The `TripleRef`-based APIs always stay in raw coordinates.
    ///
    /// Retracting charges nothing and forgets nothing: already-annotated
    /// triples stay memoized (the human effort is sunk — §2.2's cost
    /// definition counts distinct annotations performed, not surviving
    /// ones), so `seconds()` is unchanged. The default is a no-op for
    /// engines that never address by offset.
    fn retract(&mut self, retraction: &Retraction) {
        let _ = retraction;
    }
}

/// A simulated annotator: label source + cost accounting + memoization.
pub struct SimulatedAnnotator<'a> {
    oracle: &'a dyn LabelOracle,
    cost: CostModel,
    identified: HashSet<u32>,
    labeled: HashMap<TripleRef, bool>,
    tombs: TombstoneMap,
    timeline: Vec<TimelinePoint>,
    record_timeline: bool,
}

/// One point on the cumulative annotation timeline (Fig. 1): after
/// validating `triple`, the cumulative time was `seconds`; `new_entity` is
/// true when this triple required identifying its entity first (the solid
/// markers in Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// The triple just validated.
    pub triple: TripleRef,
    /// Cumulative seconds after validating it.
    pub seconds: f64,
    /// Whether entity identification was charged for this triple.
    pub new_entity: bool,
}

impl<'a> SimulatedAnnotator<'a> {
    /// New annotator over an oracle with a cost model.
    pub fn new(oracle: &'a dyn LabelOracle, cost: CostModel) -> Self {
        SimulatedAnnotator {
            oracle,
            cost,
            identified: HashSet::new(),
            labeled: HashMap::new(),
            tombs: TombstoneMap::new(),
            timeline: Vec::new(),
            record_timeline: false,
        }
    }

    /// Enable per-triple timeline recording (used by the Fig. 1
    /// experiment; off by default to keep 1000-trial runs lean).
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Annotate a batch of sampled triples, grouped into per-entity
    /// evaluation tasks. Returns the labels in the order of `refs`.
    ///
    /// Convenience wrapper over [`Annotator::annotate_into`] that allocates
    /// the output vector; hot paths should hold a scratch buffer and call
    /// `annotate_into` instead.
    pub fn annotate(&mut self, refs: &[TripleRef]) -> Vec<bool> {
        let mut out = Vec::with_capacity(refs.len());
        self.annotate_into(refs, &mut out);
        out
    }

    /// The recorded timeline (empty unless enabled).
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Current cost derived from the memo counts (Definition 3). Keeping
    /// cost a pure function of `(|E'|, |G'|)` — instead of a running float
    /// sum — makes it independent of charge *order*, so the dense engine
    /// reports byte-identical seconds on any equivalent draw sequence.
    #[inline]
    fn current_seconds(&self) -> f64 {
        self.identified.len() as f64 * self.cost.c1 + self.labeled.len() as f64 * self.cost.c2
    }

    /// Validate one triple that is not yet memoized; returns its label.
    #[inline]
    fn validate_new(&mut self, r: TripleRef, new_entity: bool) -> bool {
        let label = self.oracle.label(r);
        self.labeled.insert(r, label);
        if self.record_timeline {
            self.timeline.push(TimelinePoint {
                triple: r,
                seconds: self.current_seconds(),
                new_entity,
            });
        }
        label
    }
}

impl Annotator for SimulatedAnnotator<'_> {
    fn annotate_into(&mut self, refs: &[TripleRef], out: &mut Vec<bool>) {
        out.clear();
        // Process grouped (per-entity) to model the real task flow; memoize
        // so repeats are free.
        for task in group_into_tasks(refs) {
            let mut first_of_entity = self.identified.insert(task.cluster);
            for r in task.refs() {
                if self.labeled.contains_key(&r) {
                    // A memoized repeat costs nothing and must not clear
                    // the new-entity marker: the *first newly validated*
                    // triple of the task still carries the identification.
                    continue;
                }
                self.validate_new(r, first_of_entity);
                first_of_entity = false;
            }
        }
        out.extend(
            refs.iter()
                .map(|r| *self.labeled.get(r).expect("just annotated")),
        );
    }

    fn annotate_one(&mut self, r: TripleRef) -> bool {
        let first_of_entity = self.identified.insert(r.cluster);
        if let Some(&label) = self.labeled.get(&r) {
            return label;
        }
        self.validate_new(r, first_of_entity)
    }

    fn annotate_cluster(&mut self, cluster: u32, size: usize) -> u32 {
        // `size` is the LIVE size: once tombstones exist for this cluster,
        // live offset o resolves to a raw storage position past the dead
        // ones (identity mapping for untouched clusters).
        let dead = self.tombs.cluster(cluster).unwrap_or(&[]).to_owned();
        let mut first_of_entity = self.identified.insert(cluster);
        let mut tau = 0u32;
        for o in 0..size {
            let raw = map_live_offset(&dead, o as u32);
            let r = TripleRef::new(cluster, raw);
            let label = match self.labeled.get(&r) {
                Some(&l) => l,
                None => {
                    let l = self.validate_new(r, first_of_entity);
                    first_of_entity = false;
                    l
                }
            };
            tau += label as u32;
        }
        tau
    }

    fn annotate_offsets(&mut self, cluster: u32, offsets: &[usize]) -> u32 {
        // LIVE offsets, like annotate_cluster.
        let dead = self.tombs.cluster(cluster).unwrap_or(&[]).to_owned();
        let mut first_of_entity = self.identified.insert(cluster);
        let mut tau = 0u32;
        for &o in offsets {
            let raw = map_live_offset(&dead, o as u32);
            let r = TripleRef::new(cluster, raw);
            let label = match self.labeled.get(&r) {
                Some(&l) => l,
                None => {
                    let l = self.validate_new(r, first_of_entity);
                    first_of_entity = false;
                    l
                }
            };
            tau += label as u32;
        }
        tau
    }

    fn seconds(&self) -> f64 {
        self.current_seconds()
    }

    fn entities_identified(&self) -> usize {
        self.identified.len()
    }

    fn triples_annotated(&self) -> usize {
        self.labeled.len()
    }

    fn retract(&mut self, retraction: &Retraction) {
        // Memos are untouched (sunk cost; see the trait docs) — only the
        // live→raw offset translation changes.
        self.tombs.apply(retraction);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GoldLabels;

    fn oracle() -> GoldLabels {
        GoldLabels::new(vec![
            vec![true, false, true], // cluster 0
            vec![true],              // cluster 1
            vec![false, false],      // cluster 2
        ])
    }

    #[test]
    fn cost_is_distinct_entities_and_triples() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0));
        let labels = a.annotate(&[
            TripleRef::new(0, 0),
            TripleRef::new(0, 1),
            TripleRef::new(1, 0),
        ]);
        assert_eq!(labels, vec![true, false, true]);
        assert_eq!(a.entities_identified(), 2);
        assert_eq!(a.triples_annotated(), 3);
        assert!((a.seconds() - (2.0 * 45.0 + 3.0 * 25.0)).abs() < 1e-9);
        assert!((a.hours() * 3600.0 - a.seconds()).abs() < 1e-9);
    }

    #[test]
    fn repeats_are_free() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::default());
        a.annotate(&[TripleRef::new(0, 0)]);
        let before = a.seconds();
        let labels = a.annotate(&[TripleRef::new(0, 0), TripleRef::new(0, 0)]);
        assert_eq!(labels, vec![true, true]);
        assert_eq!(a.seconds(), before);
        assert_eq!(a.triples_annotated(), 1);
    }

    #[test]
    fn second_visit_to_entity_skips_identification() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0));
        a.annotate(&[TripleRef::new(0, 0)]);
        a.annotate(&[TripleRef::new(0, 2)]); // same entity, later batch
        assert_eq!(a.entities_identified(), 1);
        assert!((a.seconds() - (45.0 + 2.0 * 25.0)).abs() < 1e-9);
    }

    #[test]
    fn cost_invariant_to_batching_and_order() {
        let o = oracle();
        let all = [
            TripleRef::new(0, 0),
            TripleRef::new(0, 1),
            TripleRef::new(1, 0),
            TripleRef::new(2, 0),
            TripleRef::new(2, 1),
        ];
        let mut one = SimulatedAnnotator::new(&o, CostModel::default());
        one.annotate(&all);

        let mut parts = SimulatedAnnotator::new(&o, CostModel::default());
        let mut shuffled = all;
        shuffled.reverse();
        for r in shuffled {
            parts.annotate_one(r);
        }
        assert_eq!(one.seconds(), parts.seconds());
        assert_eq!(one.entities_identified(), parts.entities_identified());
        assert_eq!(one.triples_annotated(), parts.triples_annotated());
    }

    #[test]
    fn cluster_and_offset_apis_match_batch_annotation() {
        let o = oracle();
        let mut batch = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0));
        let labels = batch.annotate(&[
            TripleRef::new(0, 0),
            TripleRef::new(0, 1),
            TripleRef::new(0, 2),
        ]);
        let tau_batch = labels.iter().filter(|&&b| b).count() as u32;

        let mut direct = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0));
        let tau = direct.annotate_cluster(0, 3);
        assert_eq!(tau, tau_batch);
        assert_eq!(direct.seconds(), batch.seconds());
        assert_eq!(direct.entities_identified(), 1);
        assert_eq!(direct.triples_annotated(), 3);

        // Offsets subset: repeats stay free, subsets count correctly.
        let mut sub = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0));
        assert_eq!(sub.annotate_offsets(0, &[0, 2]), 2);
        assert_eq!(sub.annotate_offsets(0, &[0, 1, 2]), 2);
        assert_eq!(sub.triples_annotated(), 3);
        assert!((sub.seconds() - (45.0 + 3.0 * 25.0)).abs() < 1e-9);
    }

    #[test]
    fn timeline_records_entity_boundaries() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0)).with_timeline();
        a.annotate(&[
            TripleRef::new(0, 0),
            TripleRef::new(0, 1),
            TripleRef::new(1, 0),
        ]);
        let tl = a.timeline();
        assert_eq!(tl.len(), 3);
        assert!(tl[0].new_entity);
        assert!(!tl[1].new_entity);
        assert!(tl[2].new_entity);
        // Cumulative times: 70, 95, 165.
        assert!((tl[0].seconds - 70.0).abs() < 1e-9);
        assert!((tl[1].seconds - 95.0).abs() < 1e-9);
        assert!((tl[2].seconds - 165.0).abs() < 1e-9);
        // Monotone.
        assert!(tl.windows(2).all(|w| w[0].seconds < w[1].seconds));
    }

    #[test]
    fn memoized_repeat_does_not_clear_new_entity_marker() {
        // Validate (1,0); then a task [(1,0) repeat, (1,1) new] on a *new*
        // entity... the entity is already identified, so no marker. The
        // interesting case is a task on a fresh entity where the first ref
        // repeats an already-labeled triple: impossible (labeling implies
        // identification). The realizable case: task [(0,0), (0,0), (0,1)]
        // where (0,0) repeats *within* the task — the marker must land on
        // (0,1)? No: (0,0)'s first occurrence is new and takes it. But
        // [(0,0) labeled earlier via annotate_one, then task (0,0),(0,1)]
        // leaves the entity identified → neither is marked. The regression
        // this guards: a repeat in the middle of a task clearing the flag
        // for a later *new* triple of a *newly identified* entity.
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0)).with_timeline();
        // Task on entity 0 whose first listed triple appears twice before
        // the first genuinely new later triple.
        a.annotate(&[
            TripleRef::new(0, 0),
            TripleRef::new(0, 0),
            TripleRef::new(0, 1),
        ]);
        let tl = a.timeline();
        assert_eq!(tl.len(), 2);
        assert!(tl[0].new_entity, "first validated triple carries c1");
        assert!(!tl[1].new_entity);
    }

    #[test]
    fn retraction_remaps_offsets_to_live_coordinates() {
        // Cluster 0 labels: [true, false, true]. Retract raw offset 1: the
        // live view is [true, true] and live offsets {0, 1} must reach raw
        // {0, 2}.
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0));
        let r = Retraction::new(vec![(0, vec![1])]).unwrap();
        a.retract(&r);
        assert_eq!(a.annotate_cluster(0, 2), 2);
        assert_eq!(a.triples_annotated(), 2, "dead triple never validated");
        // Live offset addressing in the subset API too.
        assert_eq!(a.annotate_offsets(0, &[1]), 1); // raw 2, memoized
        assert_eq!(a.triples_annotated(), 2);
        // Untouched clusters keep the identity mapping.
        assert_eq!(a.annotate_cluster(2, 2), 0);
    }

    #[test]
    fn retraction_keeps_sunk_cost_and_memos() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::new(45.0, 25.0));
        assert_eq!(a.annotate_cluster(0, 3), 2);
        let before = a.seconds();
        a.retract(&Retraction::new(vec![(0, vec![0])]).unwrap());
        assert_eq!(a.seconds(), before, "retraction charges nothing");
        assert_eq!(a.triples_annotated(), 3, "memos are kept");
        // Re-annotating the live remainder is free: both survivors were
        // already validated under their raw refs.
        assert_eq!(a.annotate_cluster(0, 2), 1); // live = [false, true]
        assert_eq!(a.seconds(), before);
    }

    #[test]
    fn timeline_off_by_default() {
        let o = oracle();
        let mut a = SimulatedAnnotator::new(&o, CostModel::default());
        a.annotate(&[TripleRef::new(0, 0)]);
        assert!(a.timeline().is_empty());
        assert_eq!(a.cost_model(), CostModel::default());
    }
}

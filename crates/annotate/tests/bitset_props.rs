//! Property tests for the multi-word [`BitsetJournal`] kernels.
//!
//! Oracle: a plain `Vec<bool>` model driven by the same operation
//! sequence. The interesting surface is word-boundary arithmetic — spans
//! of exactly 64 bits, ranges ending on a word edge, empty ranges, and
//! growth mid-trial — so the generators bias start/end points toward
//! multiples of 64 and their neighbours.

use kg_annotate::bitset::{popcount_range, BitsetJournal};
use proptest::prelude::*;

/// One step of the replayed operation sequence.
#[derive(Debug, Clone)]
enum Op {
    Set(u64),
    SetRange(u64, u64),
    CountRange(u64, u64),
    Reset,
    Grow(u64),
}

/// Bit positions biased toward word edges: exact multiples of 64 and the
/// bits just either side of them, plus uniform filler. (The offline
/// proptest shim has no `prop_oneof`, so the variant choice is an explicit
/// selector value mapped through the raw inputs.)
fn edge_biased_bit(max: u64) -> impl Strategy<Value = u64> {
    (0u8..8, 0..=max / 64, -1i64..=1, 0..=max).prop_map(move |(sel, w, d, uniform)| match sel {
        0..=2 => (w * 64).min(max),
        3..=5 => (w * 64).saturating_add_signed(d).min(max),
        _ => uniform,
    })
}

fn op_strategy(max_bits: u64) -> impl Strategy<Value = Op> {
    (
        0u8..14,
        edge_biased_bit(max_bits),
        edge_biased_bit(max_bits),
        1u64..=3,
    )
        .prop_map(move |(sel, a, b, extra)| match sel {
            // Single-bit sets.
            0..=2 => Op::Set(a.min(max_bits - 1)),
            // General ranges (word-edge biased at both ends).
            3..=6 => Op::SetRange(a.min(b), a.max(b)),
            // Spans of exactly one word, aligned and unaligned.
            7 | 8 => {
                let s = a.min(max_bits - 64);
                Op::SetRange(s, s + 64)
            }
            // Empty ranges must be no-ops.
            9 => Op::SetRange(a, a),
            10 | 11 => Op::CountRange(a.min(b), a.max(b)),
            12 => Op::Reset,
            _ => Op::Grow(extra * 64),
        })
}

/// Drive the journal and the model together, checking every observable
/// return value along the way, then compare final states bit-for-bit.
fn run_ops(initial_bits: u64, ops: Vec<Op>) {
    let mut bm = BitsetJournal::with_capacity(initial_bits);
    let mut model = vec![false; bm.capacity() as usize];
    for op in ops {
        match op {
            Op::Set(i) => {
                let i = i.min(model.len() as u64 - 1);
                let fresh = bm.set(i);
                assert_eq!(fresh, !model[i as usize], "set({i}) fresh flag");
                model[i as usize] = true;
            }
            Op::SetRange(a, b) => {
                let (a, b) = (a.min(model.len() as u64), b.min(model.len() as u64));
                let expected = model[a as usize..b as usize]
                    .iter()
                    .filter(|&&set| !set)
                    .count() as u64;
                assert_eq!(bm.set_range(a, b), expected, "set_range({a}, {b}) fresh");
                model[a as usize..b as usize].fill(true);
            }
            Op::CountRange(a, b) => {
                let (a, b) = (a.min(model.len() as u64), b.min(model.len() as u64));
                let expected = model[a as usize..b as usize]
                    .iter()
                    .filter(|&&set| set)
                    .count() as u64;
                assert_eq!(bm.count_range(a, b), expected, "count_range({a}, {b})");
            }
            Op::Reset => {
                bm.reset();
                model.fill(false);
                assert_eq!(bm.journaled_spans(), 0);
            }
            Op::Grow(extra) => {
                // Mid-trial growth: existing bits and the journal must
                // survive (incremental evaluation grows the arena between
                // batches without resetting).
                bm.grow(bm.capacity() + extra);
                model.resize(bm.capacity() as usize, false);
            }
        }
    }
    for (i, &set) in model.iter().enumerate() {
        assert_eq!(bm.get(i as u64), set, "final state bit {i}");
    }
    // After a reset, the journal must have cleared every touched word —
    // the central span-journal invariant (over-coverage is allowed,
    // under-coverage is corruption).
    bm.reset();
    for i in 0..model.len() as u64 {
        assert!(!bm.get(i), "bit {i} survived reset — journal under-covered");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn journal_matches_bool_vec_model(
        initial_words in 1u64..6,
        ops in proptest::collection::vec(op_strategy(64 * 8), 1..60),
    ) {
        run_ops(initial_words * 64, ops);
    }

    #[test]
    fn set_range_then_reset_restores_all_clear(
        spans in proptest::collection::vec(
            (edge_biased_bit(64 * 6), edge_biased_bit(64 * 6)),
            1..12,
        ),
    ) {
        let mut bm = BitsetJournal::with_capacity(64 * 6);
        for &(a, b) in &spans {
            bm.set_range(a.min(b), a.max(b));
        }
        bm.reset();
        prop_assert_eq!(bm.count_range(0, bm.capacity()), 0);
        prop_assert_eq!(bm.journaled_spans(), 0);
    }

    #[test]
    fn popcount_range_matches_naive(
        words in proptest::collection::vec(any::<u64>(), 1..24),
        bounds in (0u64..=64 * 24, 0u64..=64 * 24),
    ) {
        let max = words.len() as u64 * 64;
        let (a, b) = (bounds.0.min(max), bounds.1.min(max));
        let (a, b) = (a.min(b), a.max(b));
        let naive: u64 = (a..b)
            .filter(|&i| words[(i >> 6) as usize] >> (i & 63) & 1 != 0)
            .count() as u64;
        prop_assert_eq!(popcount_range(&words, a, b), naive);
    }
}

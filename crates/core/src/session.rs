//! Session-scoped monitor runtime: tenant sessions over the §6
//! incremental evaluators, with versioned checkpoint/restore.
//!
//! A [`SessionRegistry`] owns many tenant *sessions*. Each session is the
//! complete, explicit state of one accuracy monitor — an
//! `Arc<`[`LabelStore`]`>` gross-population record, an extractable
//! [`MonitorState`], and an RNG cursor — while heavyweight machinery (the
//! [`TrialExecutor`], and one [`DenseArenaPool`] per distinct base KG) is
//! shared across tenants through an interned catalog.
//!
//! # Request model and the checkpoint invariant
//!
//! Every request (a batch of [`KgEvent`]s, an estimate read, an audit)
//! rebuilds its evaluator from the session's [`MonitorState`] and drives
//! it with a **fresh annotator** over the session's store, after
//! re-applying the session's merged tombstones so the live coordinate view
//! matches the uninterrupted stream. Estimates are a pure function of
//! `(MonitorState, RNG cursor, oracle labels under the live view)`, so a
//! session checkpointed mid-stream ([`SessionRegistry::checkpoint`]) and
//! restored in a fresh process ([`SessionRegistry::restore`]) produces
//! **byte-identical** estimates to the uninterrupted run — and the
//! estimate stream is invariant to how events are partitioned into
//! requests.
//!
//! Annotation *cost* is the one quantity that is not: annotator memos die
//! at request boundaries, so a cluster re-annotated in a later request is
//! charged again. `cumulative_cost_seconds` is therefore an upper bound
//! that tightens to the uninterrupted monitor's cost as requests coarsen.
//!
//! # Checkpoint format
//!
//! [`SessionRegistry::checkpoint`] emits a `KGSN` v1 record
//! ([`kg_stats::codec`]): the full [`SessionSpec`], the monitor-state
//! payload (`KGMS`), the RNG cursor, the insert-batch log, the merged
//! tombstones, and stream counters. The label store is *not* serialized —
//! restore re-materializes it from the oracle spec and replays the batch
//! log, which is byte-deterministic. Decoders reject unknown versions,
//! truncated payloads, and structurally inconsistent records with typed
//! [`CodecError`]s; they never panic on hostile input.
//!
//! # Lifecycle: eviction, spill, revival
//!
//! A registry built with [`SessionRegistry::with_lifecycle`] owns a
//! [`CheckpointStore`] and enforces a [`LifecyclePolicy`]: sessions idle
//! past the TTL, or beyond the LRU cap on in-memory sessions, are
//! checkpointed to disk and dropped from memory (*spilled*). The next
//! request against a spilled id transparently revives it — same id, same
//! RNG cursor, same estimate stream, **byte-identical** to never having
//! been evicted. Idleness is measured on a logical request-counter
//! clock, not wall time, so eviction schedules are deterministic under
//! test harnesses. A structurally corrupt spill record (torn file,
//! version skew) surfaces as a typed error and the session is dropped —
//! clients holding their own checkpoint re-register it; the registry
//! never serves a partially-decoded session.
//!
//! `write_through` additionally persists a session after every mutating
//! request, so an abrupt process kill between requests loses nothing;
//! [`SessionRegistry::drain_to_store`] checkpoints every live session at
//! shutdown and [`SessionRegistry::recover_from_store`] re-adopts the
//! full spilled tenant set (ids preserved) at startup.

use crate::config::EvalConfig;
use crate::dynamic::monitor::audit_sharded;
use crate::dynamic::reservoir::{OfferMode, ReservoirEvaluator};
use crate::dynamic::state::{MonitorState, StratifiedState};
use crate::dynamic::stratified::StratifiedIncremental;
use crate::dynamic::IncrementalEvaluator;
use crate::executor::TrialExecutor;
use crate::framework::Evaluator;
use crate::sharded::{ShardDesign, ShardReplayReport, ShardedReplay};
use crate::spill::{CheckpointStore, SpillError};
use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::dense::DenseAnnotator;
use kg_annotate::label_store::LabelStore;
use kg_annotate::lease::DenseArenaPool;
use kg_annotate::oracle::{LabelOracle, RemOracle};
use kg_model::implicit::ImplicitKg;
use kg_model::retract::{map_live_offset, KgEvent, Retraction};
use kg_model::triple::TripleRef;
use kg_model::update::UpdateBatch;
use kg_model::KgError;
use kg_sampling::PopulationIndex;
use kg_stats::codec::{CodecError, Decoder, Encoder};
use kg_stats::error::StatsError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic bytes of a serialized session record.
const MAGIC: [u8; 4] = *b"KGSN";
/// Current session record version.
const VERSION: u16 = 1;

const TAG_RESERVOIR: u8 = 0;
const TAG_STRATIFIED: u8 = 1;
const TAG_HASH: u8 = 0;
const TAG_DENSE: u8 = 1;
const TAG_PER_ITEM: u8 = 0;
const TAG_BATCHED: u8 = 1;

/// Which incremental evaluator a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluatorKind {
    /// Algorithm 1 — weighted reservoir over the insertion stream.
    Reservoir {
        /// Reservoir size `|R|`.
        capacity: usize,
    },
    /// Algorithm 2 — one stratum per update batch.
    Stratified,
}

/// Which annotation engine backs a session's requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Oracle-backed hash-map engine ([`SimulatedAnnotator`]).
    #[default]
    Hash,
    /// Dense arena engine ([`DenseAnnotator`]), grown in lock-step with
    /// the session's evolving population.
    Dense,
}

/// Immutable description of a tenant session — everything needed to
/// rebuild its evaluator and label store from scratch.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Evaluator strategy.
    pub kind: EvaluatorKind,
    /// Annotation engine.
    pub engine: Engine,
    /// Reservoir offer path (ignored by [`EvaluatorKind::Stratified`]).
    pub offer_mode: OfferMode,
    /// Second-stage sample size per cluster visit.
    pub m: usize,
    /// Evaluation loop configuration.
    pub config: EvalConfig,
    /// Seed of the session's sampling RNG.
    pub seed: u64,
    /// True accuracy of the session's [`RemOracle`].
    pub oracle_accuracy: f64,
    /// Label seed of the session's [`RemOracle`].
    pub oracle_seed: u64,
    /// Cluster sizes of the base KG.
    pub base_sizes: Vec<u32>,
}

/// What a session reports back for an estimate read or after a batch of
/// events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReport {
    /// Current accuracy estimate `μ̂`.
    pub mean: f64,
    /// Variance of the estimator.
    pub var_of_mean: f64,
    /// Independent sampling units behind the estimate.
    pub units: usize,
    /// Margin of error at the session's configured `α`.
    pub moe: f64,
    /// Whether the sampling design has left its exactness regime (see
    /// [`IncrementalEvaluator::saturated`]).
    pub saturated: bool,
    /// Live (non-tombstoned) triples in the session's population.
    pub live_triples: u64,
    /// Events absorbed since registration.
    pub events_applied: u64,
    /// Simulated human seconds spent so far. Upper bound across request
    /// boundaries — see the module docs.
    pub cumulative_cost_seconds: f64,
}

/// Typed failures of the session layer.
#[derive(Debug)]
pub enum SessionError {
    /// No session with the given id.
    UnknownSession(u64),
    /// The spec failed validation.
    InvalidSpec(&'static str),
    /// An event referenced triples outside the session's live population.
    InvalidEvent(&'static str),
    /// A checkpoint payload failed to decode.
    Codec(CodecError),
    /// A statistical precondition failed (degenerate population, bad α).
    Stats(StatsError),
    /// A population-shape precondition failed.
    Kg(KgError),
    /// The operation needs a checkpoint store but the registry has none.
    NoStore,
    /// The spill layer failed (missing record, filesystem error).
    Spill(SpillError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownSession(id) => write!(f, "unknown session {id}"),
            SessionError::InvalidSpec(what) => write!(f, "invalid session spec: {what}"),
            SessionError::InvalidEvent(what) => write!(f, "invalid event: {what}"),
            SessionError::Codec(e) => write!(f, "checkpoint codec: {e}"),
            SessionError::Stats(e) => write!(f, "stats: {e}"),
            SessionError::Kg(e) => write!(f, "population: {e}"),
            SessionError::NoStore => write!(f, "registry has no checkpoint store"),
            SessionError::Spill(e) => write!(f, "spill: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CodecError> for SessionError {
    fn from(e: CodecError) -> Self {
        SessionError::Codec(e)
    }
}

impl From<StatsError> for SessionError {
    fn from(e: StatsError) -> Self {
        SessionError::Stats(e)
    }
}

impl From<KgError> for SessionError {
    fn from(e: KgError) -> Self {
        SessionError::Kg(e)
    }
}

impl From<SpillError> for SessionError {
    fn from(e: SpillError) -> Self {
        SessionError::Spill(e)
    }
}

/// Either incremental evaluator, rebuilt around extracted state for the
/// duration of one request.
#[allow(clippy::large_enum_variant)] // transient per-request handle
enum Monitor {
    Reservoir(ReservoirEvaluator),
    Stratified(StratifiedIncremental),
}

impl Monitor {
    fn from_state(state: MonitorState, spec: &SessionSpec) -> Self {
        match state {
            MonitorState::Reservoir(rs) => {
                let capacity_spec = matches!(spec.kind, EvaluatorKind::Reservoir { .. });
                debug_assert!(
                    capacity_spec,
                    "state/spec kind mismatch is rejected at restore"
                );
                Monitor::Reservoir(ReservoirEvaluator::from_state(
                    rs,
                    spec.m,
                    spec.config,
                    spec.offer_mode,
                ))
            }
            MonitorState::Stratified(ss) => {
                Monitor::Stratified(StratifiedIncremental::from_state(ss, spec.m, spec.config))
            }
        }
    }

    fn as_dyn(&self) -> &dyn IncrementalEvaluator {
        match self {
            Monitor::Reservoir(e) => e,
            Monitor::Stratified(e) => e,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn IncrementalEvaluator {
        match self {
            Monitor::Reservoir(e) => e,
            Monitor::Stratified(e) => e,
        }
    }

    fn into_state(self) -> MonitorState {
        match self {
            Monitor::Reservoir(e) => e.into_state(),
            Monitor::Stratified(e) => e.into_state(),
        }
    }
}

/// Cheap, structurally invalid stand-in used while a request temporarily
/// owns the real state. Never observable: every taker writes the real
/// state back before returning.
fn placeholder_state() -> MonitorState {
    MonitorState::Stratified(StratifiedState {
        strata: Vec::new(),
        next_cluster_id: 0,
    })
}

/// One tenant session: spec + owned mutable stream state.
struct Session {
    spec: SessionSpec,
    oracle: RemOracle,
    state: MonitorState,
    rng: StdRng,
    /// Gross (insert-only) label record of the evolved population.
    /// Tombstones live in `merged_dead`, never in the store, so dense
    /// replays of earlier batches stay byte-stable.
    store: Arc<LabelStore>,
    /// Delta sizes of every insert batch applied, in order.
    batch_log: Vec<Vec<u32>>,
    /// Union of all retracted raw coordinates, per cluster.
    merged_dead: BTreeMap<u32, BTreeSet<u32>>,
    events_applied: u64,
    cost_seconds: f64,
}

impl Session {
    fn dead_total(&self) -> u64 {
        self.merged_dead.values().map(|s| s.len() as u64).sum()
    }

    /// All tombstones accumulated so far as one retraction, re-applied to
    /// each request's fresh annotator. The union reproduces the live
    /// coordinate view of the uninterrupted stream exactly: per-cluster
    /// dead-offset sets are order-independent.
    fn merged_retraction(&self) -> Option<Retraction> {
        if self.merged_dead.is_empty() {
            return None;
        }
        let entries = self
            .merged_dead
            .iter()
            .map(|(c, dead)| (*c, dead.iter().copied().collect::<Vec<u32>>()))
            .collect();
        Some(Retraction::new(entries).expect("merged tombstones are non-empty and deduplicated"))
    }

    /// Raw (at-insertion) size of a cluster in the session's gross
    /// population, or `None` past the current extent.
    fn raw_size(&self, cluster: usize) -> Option<u64> {
        if cluster < self.store.num_clusters() {
            Some(self.store.cluster_size(cluster) as u64)
        } else {
            None
        }
    }

    /// Reject events that address triples outside the session's gross
    /// population or re-kill already-dead triples, *before* any state is
    /// mutated. Tracks inserts pending earlier in the same request so a
    /// later event may retract from a cluster minted by an earlier one.
    fn validate_events(&self, events: &[KgEvent]) -> Result<(), SessionError> {
        let mut pending_sizes: Vec<u32> = Vec::new();
        let mut dead = self.merged_dead.clone();
        let base_clusters = self.store.num_clusters();
        for event in events {
            if let Some(r) = event.retracted() {
                for (cluster, offsets) in r.entries() {
                    let c = *cluster as usize;
                    let raw = self.raw_size(c).or_else(|| {
                        pending_sizes
                            .get(c.checked_sub(base_clusters)?)
                            .map(|&s| s as u64)
                    });
                    let Some(raw) = raw else {
                        return Err(SessionError::InvalidEvent(
                            "retraction targets a cluster past the population extent",
                        ));
                    };
                    let set = dead.entry(*cluster).or_default();
                    for &off in offsets.iter() {
                        if u64::from(off) >= raw {
                            return Err(SessionError::InvalidEvent(
                                "retraction offset exceeds the cluster's raw size",
                            ));
                        }
                        if !set.insert(off) {
                            return Err(SessionError::InvalidEvent("triple is already retracted"));
                        }
                    }
                }
            }
            if let Some(batch) = event.inserted() {
                pending_sizes.extend_from_slice(batch.delta_sizes());
            }
        }
        Ok(())
    }

    /// Apply a request's events through a fresh annotator, then fold the
    /// request back into owned state.
    fn apply_events(&mut self, events: &[KgEvent]) -> Result<EstimateReport, SessionError> {
        self.validate_events(events)?;
        let state = mem::replace(&mut self.state, placeholder_state());
        let mut monitor = Monitor::from_state(state, &self.spec);
        let merged = self.merged_retraction();
        match self.spec.engine {
            Engine::Hash => {
                let oracle = self.oracle;
                let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
                if let Some(r) = &merged {
                    annotator.retract(r);
                }
                for event in events {
                    monitor
                        .as_dyn_mut()
                        .apply_event(event, &mut annotator, &mut self.rng);
                }
                self.cost_seconds += annotator.seconds();
                for event in events {
                    if let Some(batch) = event.inserted() {
                        Arc::make_mut(&mut self.store).extend_with_batch(batch, &oracle);
                    }
                }
            }
            Engine::Dense => {
                let oracle: Arc<dyn LabelOracle + Send + Sync> = Arc::new(self.oracle);
                let mut annotator =
                    DenseAnnotator::growable(self.store.clone(), CostModel::default(), oracle);
                if let Some(r) = &merged {
                    annotator.retract(r);
                }
                for event in events {
                    monitor
                        .as_dyn_mut()
                        .apply_event(event, &mut annotator, &mut self.rng);
                }
                self.cost_seconds += annotator.seconds();
                // Growth went through copy-on-write; adopt the grown store.
                self.store = annotator.store().clone();
            }
        }
        for event in events {
            if let Some(r) = event.retracted() {
                for (cluster, offsets) in r.entries() {
                    self.merged_dead
                        .entry(*cluster)
                        .or_default()
                        .extend(offsets.iter().copied());
                }
            }
            if let Some(batch) = event.inserted() {
                self.batch_log.push(batch.delta_sizes().to_vec());
            }
            self.events_applied += 1;
        }
        self.state = monitor.into_state();
        Ok(self.report())
    }

    /// Current estimate without touching the stream.
    fn report(&mut self) -> EstimateReport {
        let state = mem::replace(&mut self.state, placeholder_state());
        let monitor = Monitor::from_state(state, &self.spec);
        let estimate = monitor.as_dyn().estimate();
        let saturated = monitor.as_dyn().saturated();
        self.state = monitor.into_state();
        EstimateReport {
            mean: estimate.mean,
            var_of_mean: estimate.var_of_mean,
            units: estimate.units,
            moe: estimate
                .moe(self.spec.config.alpha)
                .expect("alpha is validated at registration"),
            saturated,
            live_triples: self.store.total_triples() - self.dead_total(),
            events_applied: self.events_applied,
            cumulative_cost_seconds: self.cost_seconds,
        }
    }

    /// Serialize the session as a `KGSN` v1 record.
    fn checkpoint(&self) -> Vec<u8> {
        let mut e = Encoder::with_header(MAGIC, VERSION);
        put_spec(&mut e, &self.spec);
        self.state.snapshot_into(&mut e);
        for w in self.rng.state() {
            e.put_u64(w);
        }
        e.put_usize(self.batch_log.len());
        for sizes in &self.batch_log {
            e.put_u32_slice(sizes);
        }
        e.put_usize(self.merged_dead.len());
        for (cluster, dead) in &self.merged_dead {
            e.put_u32(*cluster);
            let offsets: Vec<u32> = dead.iter().copied().collect();
            e.put_u32_slice(&offsets);
        }
        e.put_u64(self.events_applied);
        e.put_f64(self.cost_seconds);
        e.finish()
    }

    /// Point-in-time **live view** of the session's population: per-cluster
    /// live sizes (gross minus tombstones), with the mapping back to raw
    /// storage coordinates. Clusters with no live triples are dropped.
    fn live_view(&self) -> LiveView {
        let clusters = self.store.num_clusters();
        let mut sizes = Vec::with_capacity(clusters);
        let mut raw_cluster = Vec::with_capacity(clusters);
        let mut dead: Vec<Arc<[u32]>> = Vec::with_capacity(clusters);
        let empty: Arc<[u32]> = Arc::from(&[][..]);
        for c in 0..clusters {
            let raw = self.store.cluster_size(c) as u64;
            let dead_set = self.merged_dead.get(&(c as u32));
            let live = raw - dead_set.map_or(0, |s| s.len() as u64);
            if live == 0 {
                continue;
            }
            sizes.push(live as u32);
            raw_cluster.push(c as u32);
            dead.push(match dead_set {
                Some(s) => s.iter().copied().collect::<Vec<u32>>().into(),
                None => empty.clone(),
            });
        }
        LiveView {
            sizes,
            raw_cluster,
            dead,
        }
    }
}

/// A session population with tombstones folded in: live cluster sizes
/// plus the translation tables back to raw coordinates.
struct LiveView {
    /// Live size per live cluster.
    sizes: Vec<u32>,
    /// Raw cluster id per live cluster.
    raw_cluster: Vec<u32>,
    /// Sorted dead raw offsets per live cluster.
    dead: Vec<Arc<[u32]>>,
}

/// Label oracle over a [`LiveView`]: live `(cluster, offset)` coordinates
/// are translated to raw storage coordinates via the same
/// [`map_live_offset`] walk both annotation engines use, then the
/// session's oracle is consulted — so audits see exactly the labels the
/// monitor estimate is tracking.
struct LiveViewOracle {
    inner: RemOracle,
    raw_cluster: Vec<u32>,
    dead: Vec<Arc<[u32]>>,
}

impl LabelOracle for LiveViewOracle {
    fn label(&self, t: TripleRef) -> bool {
        let c = t.cluster as usize;
        let raw_offset = map_live_offset(&self.dead[c], t.offset);
        self.inner
            .label(TripleRef::new(self.raw_cluster[c], raw_offset))
    }
}

fn put_spec(e: &mut Encoder, spec: &SessionSpec) {
    match spec.kind {
        EvaluatorKind::Reservoir { capacity } => {
            e.put_u8(TAG_RESERVOIR);
            e.put_usize(capacity);
        }
        EvaluatorKind::Stratified => e.put_u8(TAG_STRATIFIED),
    }
    e.put_u8(match spec.engine {
        Engine::Hash => TAG_HASH,
        Engine::Dense => TAG_DENSE,
    });
    e.put_u8(match spec.offer_mode {
        OfferMode::PerItem => TAG_PER_ITEM,
        OfferMode::Batched => TAG_BATCHED,
    });
    e.put_usize(spec.m);
    e.put_f64(spec.config.alpha);
    e.put_f64(spec.config.target_moe);
    e.put_usize(spec.config.batch_size);
    e.put_usize(spec.config.min_units);
    e.put_usize(spec.config.max_units);
    e.put_u64(spec.seed);
    e.put_f64(spec.oracle_accuracy);
    e.put_u64(spec.oracle_seed);
    e.put_u32_slice(&spec.base_sizes);
}

fn get_spec(d: &mut Decoder<'_>) -> Result<SessionSpec, CodecError> {
    let kind = match d.get_u8("session.kind")? {
        TAG_RESERVOIR => EvaluatorKind::Reservoir {
            capacity: d.get_usize("session.capacity")?,
        },
        TAG_STRATIFIED => EvaluatorKind::Stratified,
        _ => {
            return Err(CodecError::Invalid {
                what: "session.kind tag",
            })
        }
    };
    let engine = match d.get_u8("session.engine")? {
        TAG_HASH => Engine::Hash,
        TAG_DENSE => Engine::Dense,
        _ => {
            return Err(CodecError::Invalid {
                what: "session.engine tag",
            })
        }
    };
    let offer_mode = match d.get_u8("session.offer_mode")? {
        TAG_PER_ITEM => OfferMode::PerItem,
        TAG_BATCHED => OfferMode::Batched,
        _ => {
            return Err(CodecError::Invalid {
                what: "session.offer_mode tag",
            })
        }
    };
    let m = d.get_usize("session.m")?;
    let config = EvalConfig {
        alpha: d.get_f64("session.alpha")?,
        target_moe: d.get_f64("session.target_moe")?,
        batch_size: d.get_usize("session.batch_size")?,
        min_units: d.get_usize("session.min_units")?,
        max_units: d.get_usize("session.max_units")?,
    };
    let seed = d.get_u64("session.seed")?;
    let oracle_accuracy = d.get_f64("session.oracle_accuracy")?;
    let oracle_seed = d.get_u64("session.oracle_seed")?;
    let base_sizes = d.get_u32_vec("session.base_sizes")?;
    Ok(SessionSpec {
        kind,
        engine,
        offer_mode,
        m,
        config,
        seed,
        oracle_accuracy,
        oracle_seed,
        base_sizes,
    })
}

/// Decoded `KGSN` record, structurally validated but not yet bound to a
/// rebuilt label store.
struct SessionRecord {
    spec: SessionSpec,
    state: MonitorState,
    rng: [u64; 4],
    batch_log: Vec<Vec<u32>>,
    merged_dead: BTreeMap<u32, BTreeSet<u32>>,
    events_applied: u64,
    cost_seconds: f64,
}

impl SessionRecord {
    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let version = d.expect_header(MAGIC)?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion {
                magic: MAGIC,
                found: version,
                supported: VERSION,
            });
        }
        let spec = get_spec(&mut d)?;
        let state = MonitorState::restore_from(&mut d)?;
        match (&spec.kind, &state) {
            (EvaluatorKind::Reservoir { .. }, MonitorState::Reservoir(_))
            | (EvaluatorKind::Stratified, MonitorState::Stratified(_)) => {}
            _ => {
                return Err(CodecError::Invalid {
                    what: "session state does not match the spec's evaluator kind",
                })
            }
        }
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = d.get_u64("session.rng")?;
        }
        let num_batches = d.get_len(12, "session.batch_log")?;
        let mut batch_log = Vec::with_capacity(num_batches);
        let mut delta_clusters = 0usize;
        for _ in 0..num_batches {
            let sizes = d.get_u32_vec("session.batch_sizes")?;
            if sizes.is_empty() || sizes.contains(&0) {
                return Err(CodecError::Invalid {
                    what: "session batch log entries must be non-empty positive sizes",
                });
            }
            delta_clusters =
                delta_clusters
                    .checked_add(sizes.len())
                    .ok_or(CodecError::Invalid {
                        what: "session batch log cluster count overflows",
                    })?;
            batch_log.push(sizes);
        }
        let extent =
            spec.base_sizes
                .len()
                .checked_add(delta_clusters)
                .ok_or(CodecError::Invalid {
                    what: "session population extent overflows",
                })?;
        let state_extent = match &state {
            MonitorState::Reservoir(rs) => rs.pps.len(),
            MonitorState::Stratified(ss) => ss.next_cluster_id as usize,
        };
        if state_extent != extent {
            return Err(CodecError::Invalid {
                what: "session state extent disagrees with base + batch log",
            });
        }
        let num_dead = d.get_len(16, "session.merged_dead")?;
        let mut merged_dead: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        let mut prev_cluster: Option<u32> = None;
        for _ in 0..num_dead {
            let cluster = d.get_u32("session.dead_cluster")?;
            if prev_cluster.is_some_and(|p| p >= cluster) {
                return Err(CodecError::Invalid {
                    what: "session tombstone clusters must be strictly increasing",
                });
            }
            prev_cluster = Some(cluster);
            if cluster as usize >= extent {
                return Err(CodecError::Invalid {
                    what: "session tombstone cluster past the population extent",
                });
            }
            let offsets = d.get_u32_vec("session.dead_offsets")?;
            if offsets.is_empty() || offsets.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CodecError::Invalid {
                    what: "session tombstone offsets must be strictly increasing",
                });
            }
            merged_dead.insert(cluster, offsets.into_iter().collect());
        }
        let events_applied = d.get_u64("session.events_applied")?;
        let cost_seconds = d.get_f64("session.cost_seconds")?;
        if !cost_seconds.is_finite() || cost_seconds < 0.0 {
            return Err(CodecError::Invalid {
                what: "session cost must be finite and non-negative",
            });
        }
        d.finish()?;
        Ok(SessionRecord {
            spec,
            state,
            rng,
            batch_log,
            merged_dead,
            events_applied,
            cost_seconds,
        })
    }
}

fn validate_spec(spec: &SessionSpec) -> Result<(), SessionError> {
    if spec.base_sizes.is_empty() {
        return Err(SessionError::InvalidSpec("base KG must have clusters"));
    }
    if spec.m == 0 {
        return Err(SessionError::InvalidSpec("m must be at least 1"));
    }
    if let EvaluatorKind::Reservoir { capacity } = spec.kind {
        if capacity == 0 {
            return Err(SessionError::InvalidSpec(
                "reservoir capacity must be at least 1",
            ));
        }
    }
    if !(0.0..=1.0).contains(&spec.oracle_accuracy) {
        return Err(SessionError::InvalidSpec(
            "oracle accuracy must lie in [0, 1]",
        ));
    }
    if !(spec.config.alpha > 0.0 && spec.config.alpha < 1.0) {
        return Err(SessionError::InvalidSpec("alpha must lie in (0, 1)"));
    }
    if !(spec.config.target_moe > 0.0 && spec.config.target_moe.is_finite()) {
        return Err(SessionError::InvalidSpec("target MoE must be positive"));
    }
    if spec.config.batch_size == 0 {
        return Err(SessionError::InvalidSpec("batch size must be at least 1"));
    }
    Ok(())
}

/// Interned per-base-KG shared machinery: one materialized label store and
/// one dense arena pool, shared by every tenant registering the same
/// `(base sizes, oracle)` — a thousand identical registrations build the
/// store once.
struct CatalogEntry {
    store: Arc<LabelStore>,
    pool: DenseArenaPool,
}

type CatalogKey = (Vec<u32>, u64, u64);

/// Lifecycle policy of a registry with a [`CheckpointStore`]. The default
/// policy never evicts and never write-through-persists — spill is then
/// only used by explicit [`SessionRegistry::evict`] /
/// [`SessionRegistry::drain_to_store`] calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifecyclePolicy {
    /// LRU cap on in-memory sessions: when more than `max_live` sessions
    /// are resident, the least-recently-used idle ones are evicted to the
    /// store.
    pub max_live: Option<usize>,
    /// Idle TTL in logical clock ticks (one tick per registry operation):
    /// a session untouched for more than `idle_ttl` ticks is evicted.
    pub idle_ttl: Option<u64>,
    /// Persist every session to the store after each successful mutating
    /// request (and at registration), so an abrupt process kill between
    /// requests loses no acknowledged state.
    pub write_through: bool,
}

/// Lifecycle counters of a registry (all monotonic except `live` and
/// `spilled`, which are point-in-time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Sessions currently resident in memory.
    pub live: usize,
    /// Sessions currently evicted to the spill store.
    pub spilled: usize,
    /// Evictions performed (TTL, LRU, or explicit).
    pub evictions: u64,
    /// Spilled sessions revived by a request.
    pub revivals: u64,
    /// Sessions dropped because their spill record failed to decode.
    pub corrupt_dropped: u64,
    /// Failed store writes (eviction kept the session live; write-through
    /// returned success without persistence).
    pub persist_failures: u64,
}

/// A session slot: resident, or evicted to the spill store.
enum Slot {
    Live(LiveSlot),
    Spilled,
}

struct LiveSlot {
    session: Arc<Mutex<Session>>,
    /// Logical-clock stamp of the last request that touched the session.
    last_used: u64,
    /// Requests currently holding the session (eviction skips these).
    in_use: u32,
}

/// RAII access to one resident session. While a guard is alive the slot's
/// `in_use` count is positive, so the eviction sweep never checkpoints a
/// session out from under an active request.
struct SessionGuard<'r> {
    registry: &'r SessionRegistry,
    id: u64,
    session: Arc<Mutex<Session>>,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        let mut sessions = self.registry.sessions.lock().unwrap();
        if let Some(Slot::Live(l)) = sessions.get_mut(&self.id) {
            l.in_use -= 1;
        }
    }
}

/// Registry of tenant monitor sessions sharing one [`TrialExecutor`] and
/// per-base-KG [`DenseArenaPool`]s.
///
/// All methods take `&self`; sessions are independently locked, so
/// requests against different tenants proceed concurrently and the
/// per-tenant estimate stream is byte-identical to driving that tenant
/// alone (see `tests/session_stress.rs`). With a [`CheckpointStore`]
/// attached, idle sessions spill to disk and revive transparently — see
/// the module docs.
pub struct SessionRegistry {
    executor: TrialExecutor,
    catalog: Mutex<BTreeMap<CatalogKey, Arc<CatalogEntry>>>,
    sessions: Mutex<BTreeMap<u64, Slot>>,
    next_id: AtomicU64,
    store: Option<CheckpointStore>,
    policy: LifecyclePolicy,
    /// Logical clock: one tick per registry operation. Eviction idleness
    /// is measured on this, never on wall time.
    clock: AtomicU64,
    evictions: AtomicU64,
    revivals: AtomicU64,
    corrupt_dropped: AtomicU64,
    persist_failures: AtomicU64,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionRegistry {
    /// Registry with a default-sized shared executor.
    pub fn new() -> Self {
        Self::with_executor(TrialExecutor::new())
    }

    /// Registry around an explicitly sized shared executor; audits use its
    /// worker budget for shard parallelism.
    pub fn with_executor(executor: TrialExecutor) -> Self {
        SessionRegistry {
            executor,
            catalog: Mutex::new(BTreeMap::new()),
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            store: None,
            policy: LifecyclePolicy::default(),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            revivals: AtomicU64::new(0),
            corrupt_dropped: AtomicU64::new(0),
            persist_failures: AtomicU64::new(0),
        }
    }

    /// Registry with a spill store and lifecycle policy attached.
    pub fn with_lifecycle(
        executor: TrialExecutor,
        policy: LifecyclePolicy,
        store: CheckpointStore,
    ) -> Self {
        let mut registry = Self::with_executor(executor);
        if let Some(floor) = store.id_floor() {
            registry.next_id = AtomicU64::new(floor.max(1));
        }
        registry.store = Some(store);
        registry.policy = policy;
        registry
    }

    /// The shared trial executor (for callers fanning out replays of
    /// registered sessions).
    pub fn executor(&self) -> &TrialExecutor {
        &self.executor
    }

    /// The attached spill store, if any.
    pub fn store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// Number of sessions (resident + spilled).
    pub fn len(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Whether the registry holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of all sessions (resident + spilled), ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.sessions.lock().unwrap().keys().copied().collect()
    }

    /// Whether a session is currently resident (as opposed to spilled or
    /// unknown).
    pub fn is_live(&self, id: u64) -> bool {
        matches!(self.sessions.lock().unwrap().get(&id), Some(Slot::Live(_)))
    }

    /// Point-in-time lifecycle counters.
    pub fn stats(&self) -> RegistryStats {
        let sessions = self.sessions.lock().unwrap();
        let live = sessions
            .values()
            .filter(|s| matches!(s, Slot::Live(_)))
            .count();
        let spilled = sessions.len() - live;
        drop(sessions);
        RegistryStats {
            live,
            spilled,
            evictions: self.evictions.load(Ordering::Relaxed),
            revivals: self.revivals.load(Ordering::Relaxed),
            corrupt_dropped: self.corrupt_dropped.load(Ordering::Relaxed),
            persist_failures: self.persist_failures.load(Ordering::Relaxed),
        }
    }

    /// Drop a session (resident or spilled, including its spill record),
    /// returning whether it existed.
    pub fn remove(&self, id: u64) -> bool {
        let existed = self.sessions.lock().unwrap().remove(&id).is_some();
        if let Some(store) = &self.store {
            let _ = store.remove(id);
        }
        existed
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn catalog_entry(
        &self,
        spec: &SessionSpec,
        base: &ImplicitKg,
        oracle: &RemOracle,
    ) -> Arc<CatalogEntry> {
        let key = (
            spec.base_sizes.clone(),
            spec.oracle_accuracy.to_bits(),
            spec.oracle_seed,
        );
        let mut catalog = self.catalog.lock().unwrap();
        catalog
            .entry(key)
            .or_insert_with(|| {
                let store = Arc::new(LabelStore::materialize(base, oracle));
                let pool = DenseArenaPool::new(store.clone(), CostModel::default());
                Arc::new(CatalogEntry { store, pool })
            })
            .clone()
    }

    /// Resolve a session for one request, reviving it from spill if
    /// needed, and pin it against eviction for the guard's lifetime.
    fn acquire(&self, id: u64) -> Result<SessionGuard<'_>, SessionError> {
        let now = self.tick();
        let mut sessions = self.sessions.lock().unwrap();
        let slot = sessions
            .get_mut(&id)
            .ok_or(SessionError::UnknownSession(id))?;
        let session = match slot {
            Slot::Live(l) => {
                l.last_used = now;
                l.in_use += 1;
                l.session.clone()
            }
            Slot::Spilled => {
                let store = self
                    .store
                    .as_ref()
                    .expect("spilled slots only exist with a store attached");
                let bytes = match store.load(id) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        // The record vanished out from under us — the
                        // session is unrecoverable; forget it.
                        sessions.remove(&id);
                        self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                        return Err(e.into());
                    }
                };
                let session = match self.materialize(&bytes) {
                    Ok(session) => session,
                    Err(e) => {
                        // Torn / corrupt / version-skewed record: typed
                        // error, and the session is dropped rather than
                        // ever served partially decoded. Clients holding
                        // their own checkpoint re-register it.
                        sessions.remove(&id);
                        let _ = store.remove(id);
                        self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                };
                let session = Arc::new(Mutex::new(session));
                *slot = Slot::Live(LiveSlot {
                    session: session.clone(),
                    last_used: now,
                    in_use: 1,
                });
                self.revivals.fetch_add(1, Ordering::Relaxed);
                session
            }
        };
        Ok(SessionGuard {
            registry: self,
            id,
            session,
        })
    }

    fn insert(&self, session: Session) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = self.tick();
        let mut sessions = self.sessions.lock().unwrap();
        sessions.insert(
            id,
            Slot::Live(LiveSlot {
                session: Arc::new(Mutex::new(session)),
                last_used: now,
                in_use: 0,
            }),
        );
        // Persist the id floor before the id escapes, so a crash and
        // recovery can never re-mint it even if this session's own spill
        // record is lost. Loading the counter under the sessions lock
        // keeps concurrent writes monotonic.
        if let Some(store) = &self.store {
            let floor = self.next_id.load(Ordering::Relaxed);
            if store.record_id_floor(floor).is_err() {
                self.persist_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        id
    }

    /// Decode a `KGSN` record and rebuild the full in-memory session
    /// (label store re-materialized from the catalog + batch-log replay).
    fn materialize(&self, bytes: &[u8]) -> Result<Session, SessionError> {
        let record = SessionRecord::decode(bytes)?;
        validate_spec(&record.spec)?;
        let oracle = RemOracle::new(record.spec.oracle_accuracy, record.spec.oracle_seed);
        let base = ImplicitKg::new(record.spec.base_sizes.clone())?;
        let entry = self.catalog_entry(&record.spec, &base, &oracle);
        let mut store = entry.store.clone();
        for sizes in &record.batch_log {
            let batch = UpdateBatch::from_sizes(sizes.clone())?;
            Arc::make_mut(&mut store).extend_with_batch(&batch, &oracle);
        }
        for (cluster, dead) in &record.merged_dead {
            let raw = store.cluster_size(*cluster as usize) as u64;
            if dead.iter().any(|&off| u64::from(off) >= raw) {
                return Err(SessionError::Codec(CodecError::Invalid {
                    what: "session tombstone offset exceeds its cluster's raw size",
                }));
            }
        }
        Ok(Session {
            spec: record.spec,
            oracle,
            state: record.state,
            rng: StdRng::from_state(record.rng),
            store,
            batch_log: record.batch_log,
            merged_dead: record.merged_dead,
            events_applied: record.events_applied,
            cost_seconds: record.cost_seconds,
        })
    }

    /// Enforce the lifecycle policy: evict idle-expired sessions, then
    /// trim the resident set to the LRU cap. Sessions pinned by an active
    /// request are never evicted; a failed store write keeps the session
    /// resident (counted in [`RegistryStats::persist_failures`]).
    fn enforce(&self) {
        let Some(store) = &self.store else { return };
        if self.policy.max_live.is_none() && self.policy.idle_ttl.is_none() {
            return;
        }
        let now = self.clock.load(Ordering::Relaxed);
        let mut sessions = self.sessions.lock().unwrap();
        let mut victims: Vec<u64> = Vec::new();
        if let Some(ttl) = self.policy.idle_ttl {
            for (&id, slot) in sessions.iter() {
                if let Slot::Live(l) = slot {
                    if l.in_use == 0 && now.saturating_sub(l.last_used) > ttl {
                        victims.push(id);
                    }
                }
            }
        }
        if let Some(cap) = self.policy.max_live {
            let resident = sessions
                .values()
                .filter(|s| matches!(s, Slot::Live(_)))
                .count();
            let excess = resident.saturating_sub(victims.len()).saturating_sub(cap);
            if excess > 0 {
                let mut lru: Vec<(u64, u64)> = sessions
                    .iter()
                    .filter_map(|(&id, slot)| match slot {
                        Slot::Live(l) if l.in_use == 0 && !victims.contains(&id) => {
                            Some((l.last_used, id))
                        }
                        _ => None,
                    })
                    .collect();
                lru.sort_unstable();
                victims.extend(lru.into_iter().take(excess).map(|(_, id)| id));
            }
        }
        for id in victims {
            self.evict_locked(&mut sessions, store, id);
        }
    }

    /// Checkpoint a resident, unpinned session to the store and mark the
    /// slot spilled. Caller holds the sessions lock.
    fn evict_locked(
        &self,
        sessions: &mut BTreeMap<u64, Slot>,
        store: &CheckpointStore,
        id: u64,
    ) -> bool {
        let Some(slot) = sessions.get_mut(&id) else {
            return false;
        };
        let Slot::Live(l) = slot else { return false };
        if l.in_use != 0 {
            return false;
        }
        let bytes = l.session.lock().unwrap().checkpoint();
        if store.save(id, &bytes).is_err() {
            self.persist_failures.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        *slot = Slot::Spilled;
        self.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Explicitly evict one session to the spill store. Returns `false`
    /// if the session is already spilled or pinned by an active request.
    pub fn evict(&self, id: u64) -> Result<bool, SessionError> {
        let store = self.store.as_ref().ok_or(SessionError::NoStore)?;
        let mut sessions = self.sessions.lock().unwrap();
        if !sessions.contains_key(&id) {
            return Err(SessionError::UnknownSession(id));
        }
        Ok(self.evict_locked(&mut sessions, store, id))
    }

    /// Checkpoint every resident session to the spill store (sessions stay
    /// resident). The graceful-drain path: call once new requests have
    /// stopped, then exit; a fresh process recovers the full tenant set
    /// with [`SessionRegistry::recover_from_store`]. Returns the number of
    /// sessions persisted.
    pub fn drain_to_store(&self) -> Result<usize, SessionError> {
        let store = self.store.as_ref().ok_or(SessionError::NoStore)?;
        let sessions = self.sessions.lock().unwrap();
        let mut persisted = 0;
        for (&id, slot) in sessions.iter() {
            if let Slot::Live(l) = slot {
                let bytes = l.session.lock().unwrap().checkpoint();
                store.save(id, &bytes).map_err(SpillError::from)?;
                persisted += 1;
            }
        }
        Ok(persisted)
    }

    /// Adopt every session spilled in the store as a (lazily revived)
    /// spilled slot, preserving ids; `next_id` advances past the highest
    /// recovered id and past the store's persisted id floor, so ids of
    /// sessions whose records were lost or corrupted are never re-minted.
    /// Returns the number of sessions adopted.
    pub fn recover_from_store(&self) -> Result<usize, SessionError> {
        let store = self.store.as_ref().ok_or(SessionError::NoStore)?;
        let ids = store.ids().map_err(SpillError::from)?;
        let mut sessions = self.sessions.lock().unwrap();
        if let Some(floor) = store.id_floor() {
            let next = self.next_id.load(Ordering::Relaxed).max(floor);
            self.next_id.store(next, Ordering::Relaxed);
        }
        let mut adopted = 0;
        for id in ids {
            let next = self.next_id.load(Ordering::Relaxed).max(id + 1);
            self.next_id.store(next, Ordering::Relaxed);
            if let std::collections::btree_map::Entry::Vacant(v) = sessions.entry(id) {
                v.insert(Slot::Spilled);
                adopted += 1;
            }
        }
        Ok(adopted)
    }

    /// Persist a session after a successful mutating request when the
    /// policy asks for write-through.
    fn persist_write_through(&self, guard: &SessionGuard<'_>) {
        if !self.policy.write_through {
            return;
        }
        let Some(store) = &self.store else { return };
        let bytes = guard.session.lock().unwrap().checkpoint();
        if store.save(guard.id, &bytes).is_err() {
            self.persist_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evaluate the base KG under the spec and return the initial monitor
    /// state. The base evaluation never grows the population, so the
    /// dense path safely leases an arena from the shared catalog pool.
    fn evaluate_base(
        spec: &SessionSpec,
        base: &ImplicitKg,
        oracle: &RemOracle,
        annotator: &mut dyn Annotator,
        rng: &mut StdRng,
    ) -> Result<MonitorState, SessionError> {
        match spec.kind {
            EvaluatorKind::Reservoir { capacity } => {
                Ok(ReservoirEvaluator::evaluate_base_with_mode(
                    base,
                    capacity,
                    spec.m,
                    spec.config,
                    spec.offer_mode,
                    annotator,
                    rng,
                )
                .into_state())
            }
            EvaluatorKind::Stratified => {
                let index = Arc::new(PopulationIndex::from_population(base)?);
                let report = Evaluator::twcs(spec.m).run_with_annotator(
                    index,
                    oracle,
                    annotator,
                    &spec.config,
                    rng,
                )?;
                Ok(
                    StratifiedIncremental::from_base(base, report.estimate, spec.m, spec.config)
                        .into_state(),
                )
            }
        }
    }

    /// Register a new tenant session: evaluate its base KG and return the
    /// session id.
    pub fn register(&self, spec: SessionSpec) -> Result<u64, SessionError> {
        validate_spec(&spec)?;
        let oracle = RemOracle::new(spec.oracle_accuracy, spec.oracle_seed);
        let base = ImplicitKg::new(spec.base_sizes.clone())?;
        let entry = self.catalog_entry(&spec, &base, &oracle);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let (state, cost_seconds) = match spec.engine {
            Engine::Hash => {
                let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
                let state = Self::evaluate_base(&spec, &base, &oracle, &mut annotator, &mut rng)?;
                (state, annotator.seconds())
            }
            Engine::Dense => {
                let mut lease = entry.pool.checkout();
                let annotator = lease.arena_mut();
                let state = Self::evaluate_base(&spec, &base, &oracle, annotator, &mut rng)?;
                (state, annotator.seconds())
            }
        };
        let id = self.insert(Session {
            spec,
            oracle,
            state,
            rng,
            store: entry.store.clone(),
            batch_log: Vec::new(),
            merged_dead: BTreeMap::new(),
            events_applied: 0,
            cost_seconds,
        });
        if self.policy.write_through {
            if let Ok(guard) = self.acquire(id) {
                self.persist_write_through(&guard);
            }
        }
        self.enforce();
        Ok(id)
    }

    /// Restore a session from a `KGSN` checkpoint into this registry
    /// (typically a fresh process) and return its new id. The label store
    /// is re-materialized from the oracle spec and batch log; the
    /// estimate stream continues byte-identically to the uninterrupted
    /// session.
    pub fn restore(&self, bytes: &[u8]) -> Result<u64, SessionError> {
        let session = self.materialize(bytes)?;
        let id = self.insert(session);
        if self.policy.write_through {
            if let Ok(guard) = self.acquire(id) {
                self.persist_write_through(&guard);
            }
        }
        self.enforce();
        Ok(id)
    }

    /// Apply a request of interleaved events (inserts, retractions,
    /// revisions) to a session and return the post-request estimate.
    pub fn apply_events(
        &self,
        id: u64,
        events: &[KgEvent],
    ) -> Result<EstimateReport, SessionError> {
        let guard = self.acquire(id)?;
        let report = guard.session.lock().unwrap().apply_events(events);
        if report.is_ok() {
            self.persist_write_through(&guard);
        }
        drop(guard);
        self.enforce();
        report
    }

    /// Apply pure insertion batches — the `POST /kg/{id}/batch` shape.
    pub fn apply_batches(
        &self,
        id: u64,
        batches: &[UpdateBatch],
    ) -> Result<EstimateReport, SessionError> {
        let events: Vec<KgEvent> = batches.iter().cloned().map(KgEvent::Insert).collect();
        self.apply_events(id, &events)
    }

    /// Current estimate of a session, without consuming any RNG.
    pub fn estimate(&self, id: u64) -> Result<EstimateReport, SessionError> {
        let guard = self.acquire(id)?;
        let report = guard.session.lock().unwrap().report();
        drop(guard);
        self.enforce();
        Ok(report)
    }

    /// Serialize a session as a `KGSN` v1 checkpoint. The session stays
    /// live; restoring the bytes elsewhere resumes its exact estimate
    /// stream.
    pub fn checkpoint(&self, id: u64) -> Result<Vec<u8>, SessionError> {
        let guard = self.acquire(id)?;
        let bytes = guard.session.lock().unwrap().checkpoint();
        drop(guard);
        self.enforce();
        Ok(bytes)
    }

    /// Full-fidelity sharded audit of the session's **live** population:
    /// base plus every insert batch, with the merged tombstone map folded
    /// in, so the audit measures exactly the live-view quantity the
    /// monitor estimate tracks. Live sample coordinates are mapped back to
    /// raw storage offsets through the same [`map_live_offset`] walk the
    /// annotation engines use. Shard parallelism follows the registry
    /// executor's worker budget, and the report is bitwise invariant to
    /// it.
    pub fn audit(&self, id: u64, units: u64, seed: u64) -> Result<ShardReplayReport, SessionError> {
        let guard = self.acquire(id)?;
        let session = guard.session.lock().unwrap();
        let view = session.live_view();
        let m = session.spec.m;
        let oracle = LiveViewOracle {
            inner: session.oracle,
            raw_cluster: view.raw_cluster,
            dead: view.dead,
        };
        drop(session);
        drop(guard);
        let population = ImplicitKg::new(view.sizes)?;
        let replay = ShardedReplay::new().with_shard_workers(self.executor.workers().max(1));
        let report = audit_sharded(
            &population,
            ShardDesign::TwoStage { m },
            &oracle,
            CostModel::default(),
            &replay,
            units,
            seed,
        )?;
        self.enforce();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs_spec() -> SessionSpec {
        SessionSpec {
            kind: EvaluatorKind::Reservoir { capacity: 40 },
            engine: Engine::Hash,
            offer_mode: OfferMode::Batched,
            m: 5,
            config: EvalConfig::default(),
            seed: 72019,
            oracle_accuracy: 0.9,
            oracle_seed: 11,
            base_sizes: (0..400).map(|i| 1 + (i % 9)).collect(),
        }
    }

    fn ss_spec() -> SessionSpec {
        SessionSpec {
            kind: EvaluatorKind::Stratified,
            engine: Engine::Hash,
            offer_mode: OfferMode::Batched,
            ..rs_spec()
        }
    }

    fn stream() -> Vec<KgEvent> {
        vec![
            KgEvent::Insert(UpdateBatch::from_sizes(vec![3; 60]).unwrap()),
            KgEvent::Retract(Retraction::new(vec![(2, vec![0]), (401, vec![1, 2])]).unwrap()),
            KgEvent::Revise(
                Retraction::new(vec![(405, vec![0, 1, 2])]).unwrap(),
                UpdateBatch::from_sizes(vec![5; 30]).unwrap(),
            ),
            KgEvent::Insert(UpdateBatch::from_sizes(vec![2; 45]).unwrap()),
        ]
    }

    fn bits(r: &EstimateReport) -> (u64, u64, usize, bool) {
        (
            r.mean.to_bits(),
            r.var_of_mean.to_bits(),
            r.units,
            r.saturated,
        )
    }

    #[test]
    fn registration_is_deterministic_and_catalog_is_shared() {
        let registry = SessionRegistry::new();
        let a = registry.register(rs_spec()).unwrap();
        let b = registry.register(rs_spec()).unwrap();
        assert_eq!(registry.len(), 2);
        let ra = registry.estimate(a).unwrap();
        let rb = registry.estimate(b).unwrap();
        assert_eq!(bits(&ra), bits(&rb), "same spec must evaluate identically");
        assert_eq!(
            registry.catalog.lock().unwrap().len(),
            1,
            "one interned base store"
        );
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically_under_churn() {
        for spec in [rs_spec(), ss_spec()] {
            let events = stream();
            // Uninterrupted: one session sees all four events,
            // partitioned one per request.
            let full = SessionRegistry::new();
            let id = full.register(spec.clone()).unwrap();
            let mut want = Vec::new();
            for event in &events {
                want.push(bits(
                    &full.apply_events(id, std::slice::from_ref(event)).unwrap(),
                ));
            }
            // Interrupted after two events, restored into a fresh registry.
            let first = SessionRegistry::new();
            let id1 = first.register(spec.clone()).unwrap();
            let mut got = Vec::new();
            for event in &events[..2] {
                got.push(bits(
                    &first
                        .apply_events(id1, std::slice::from_ref(event))
                        .unwrap(),
                ));
            }
            let snapshot = first.checkpoint(id1).unwrap();
            drop(first);
            let second = SessionRegistry::new();
            let id2 = second.restore(&snapshot).unwrap();
            for event in &events[2..] {
                got.push(bits(
                    &second
                        .apply_events(id2, std::slice::from_ref(event))
                        .unwrap(),
                ));
            }
            assert_eq!(got, want, "restored stream diverged ({:?})", spec.kind);
            // The restored session checkpoints byte-identically to a
            // fresh checkpoint of the uninterrupted session only after
            // costs agree — compare the estimate surface instead.
            assert_eq!(
                bits(&second.estimate(id2).unwrap()),
                bits(&full.estimate(id).unwrap())
            );
        }
    }

    #[test]
    fn dense_engine_checkpoint_matches_hash_engine() {
        let hash = rs_spec();
        let dense = SessionSpec {
            engine: Engine::Dense,
            ..hash.clone()
        };
        let registry = SessionRegistry::new();
        let hid = registry.register(hash).unwrap();
        let did = registry.register(dense).unwrap();
        for event in stream() {
            let h = registry
                .apply_events(hid, std::slice::from_ref(&event))
                .unwrap();
            let d = registry.apply_events(did, &[event]).unwrap();
            assert_eq!(bits(&h), bits(&d), "engines must agree byte-for-byte");
        }
        // And a dense restore keeps agreeing.
        let snapshot = registry.checkpoint(did).unwrap();
        let rid = registry.restore(&snapshot).unwrap();
        let extra = KgEvent::Insert(UpdateBatch::from_sizes(vec![4; 20]).unwrap());
        let d = registry
            .apply_events(did, std::slice::from_ref(&extra))
            .unwrap();
        let r = registry
            .apply_events(rid, std::slice::from_ref(&extra))
            .unwrap();
        let h = registry.apply_events(hid, &[extra]).unwrap();
        assert_eq!(bits(&d), bits(&r));
        assert_eq!(bits(&d), bits(&h));
    }

    #[test]
    fn request_partitioning_does_not_change_estimates() {
        let events = stream();
        let one_shot = SessionRegistry::new();
        let a = one_shot.register(rs_spec()).unwrap();
        let all = one_shot.apply_events(a, &events).unwrap();
        let split = SessionRegistry::new();
        let b = split.register(rs_spec()).unwrap();
        let mut last = None;
        for event in &events {
            last = Some(split.apply_events(b, std::slice::from_ref(event)).unwrap());
        }
        assert_eq!(bits(&all), bits(&last.unwrap()));
    }

    #[test]
    fn invalid_events_are_rejected_before_any_mutation() {
        let registry = SessionRegistry::new();
        let id = registry.register(rs_spec()).unwrap();
        let before = registry.estimate(id).unwrap();
        let past_extent = KgEvent::Retract(Retraction::new(vec![(9999, vec![0])]).unwrap());
        assert!(matches!(
            registry.apply_events(id, &[past_extent]),
            Err(SessionError::InvalidEvent(_))
        ));
        let off_range = KgEvent::Retract(Retraction::new(vec![(0, vec![500])]).unwrap());
        assert!(matches!(
            registry.apply_events(id, &[off_range]),
            Err(SessionError::InvalidEvent(_))
        ));
        let double_kill = vec![
            KgEvent::Retract(Retraction::new(vec![(2, vec![0])]).unwrap()),
            KgEvent::Retract(Retraction::new(vec![(2, vec![0])]).unwrap()),
        ];
        assert!(matches!(
            registry.apply_events(id, &double_kill),
            Err(SessionError::InvalidEvent(_))
        ));
        assert_eq!(bits(&before), bits(&registry.estimate(id).unwrap()));
        assert_eq!(registry.estimate(id).unwrap().events_applied, 0);
    }

    #[test]
    fn corrupted_checkpoints_return_typed_errors() {
        let registry = SessionRegistry::new();
        let id = registry.register(rs_spec()).unwrap();
        registry.apply_events(id, &stream()).unwrap();
        let bytes = registry.checkpoint(id).unwrap();
        // Every truncation fails cleanly.
        for cut in 0..bytes.len() {
            assert!(
                registry.restore(&bytes[..cut]).is_err(),
                "truncation at {cut} must not restore"
            );
        }
        // Wrong version.
        let mut wrong = bytes.clone();
        wrong[4] = 0xEE;
        assert!(matches!(
            registry.restore(&wrong),
            Err(SessionError::Codec(CodecError::UnsupportedVersion { .. }))
        ));
        // Wrong magic.
        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert!(matches!(
            registry.restore(&magic),
            Err(SessionError::Codec(CodecError::BadMagic { .. }))
        ));
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(registry.restore(&long).is_err());
    }

    #[test]
    fn audit_is_worker_invariant() {
        let narrow = SessionRegistry::with_executor(TrialExecutor::new().with_workers(1));
        let wide = SessionRegistry::with_executor(TrialExecutor::new().with_workers(4));
        let a = narrow.register(rs_spec()).unwrap();
        let b = wide.register(rs_spec()).unwrap();
        let batch = UpdateBatch::from_sizes(vec![3; 60]).unwrap();
        narrow
            .apply_batches(a, std::slice::from_ref(&batch))
            .unwrap();
        wide.apply_batches(b, std::slice::from_ref(&batch)).unwrap();
        let ra = narrow.audit(a, 600, 0xA0D1).unwrap();
        let rb = wide.audit(b, 600, 0xA0D1).unwrap();
        assert_eq!(ra.estimate.mean.to_bits(), rb.estimate.mean.to_bits());
        assert_eq!(
            ra.estimate.var_of_mean.to_bits(),
            rb.estimate.var_of_mean.to_bits()
        );
        assert_eq!(ra.labeled, rb.labeled);
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        let registry = SessionRegistry::new();
        let mut bad = rs_spec();
        bad.base_sizes.clear();
        assert!(matches!(
            registry.register(bad),
            Err(SessionError::InvalidSpec(_))
        ));
        let mut bad = rs_spec();
        bad.m = 0;
        assert!(matches!(
            registry.register(bad),
            Err(SessionError::InvalidSpec(_))
        ));
        let mut bad = rs_spec();
        bad.kind = EvaluatorKind::Reservoir { capacity: 0 };
        assert!(matches!(
            registry.register(bad),
            Err(SessionError::InvalidSpec(_))
        ));
        let mut bad = rs_spec();
        bad.oracle_accuracy = 1.5;
        assert!(matches!(
            registry.register(bad),
            Err(SessionError::InvalidSpec(_))
        ));
        let mut bad = rs_spec();
        bad.config.alpha = 0.0;
        assert!(matches!(
            registry.register(bad),
            Err(SessionError::InvalidSpec(_))
        ));
        assert!(registry.is_empty());
        assert!(matches!(
            registry.estimate(77),
            Err(SessionError::UnknownSession(77))
        ));
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kg-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn lifecycle(dir: &std::path::Path, policy: LifecyclePolicy) -> SessionRegistry {
        SessionRegistry::with_lifecycle(
            TrialExecutor::new().with_workers(2),
            policy,
            CheckpointStore::open(dir).unwrap(),
        )
    }

    #[test]
    fn lru_eviction_and_revival_are_byte_identical() {
        let dir = scratch("lru");
        let control = SessionRegistry::new();
        let churned = lifecycle(
            &dir,
            LifecyclePolicy {
                max_live: Some(1),
                ..LifecyclePolicy::default()
            },
        );
        let ca = control.register(rs_spec()).unwrap();
        let cb = control.register(ss_spec()).unwrap();
        let a = churned.register(rs_spec()).unwrap();
        let b = churned.register(ss_spec()).unwrap();
        let pre_evict = churned.checkpoint(a).unwrap();
        for event in stream() {
            // Interleave tenants so every request revives one session and
            // evicts the other (max_live = 1).
            let want_a = control
                .apply_events(ca, std::slice::from_ref(&event))
                .unwrap();
            let want_b = control
                .apply_events(cb, std::slice::from_ref(&event))
                .unwrap();
            let got_a = churned
                .apply_events(a, std::slice::from_ref(&event))
                .unwrap();
            let got_b = churned.apply_events(b, &[event]).unwrap();
            assert_eq!(
                bits(&got_a),
                bits(&want_a),
                "eviction churn changed tenant A"
            );
            assert_eq!(
                bits(&got_b),
                bits(&want_b),
                "eviction churn changed tenant B"
            );
        }
        let stats = churned.stats();
        assert!(stats.evictions >= 4, "expected churn, got {stats:?}");
        assert!(stats.revivals >= 4, "expected revivals, got {stats:?}");
        assert_eq!(stats.corrupt_dropped, 0);
        assert_eq!(stats.live + stats.spilled, 2);
        assert_eq!(churned.len(), 2);
        // A spill round trip leaves checkpoint bytes untouched.
        drop(pre_evict);
        assert_eq!(
            churned.checkpoint(a).unwrap(),
            control.checkpoint(ca).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn idle_ttl_evicts_only_stale_sessions() {
        let dir = scratch("ttl");
        let registry = lifecycle(
            &dir,
            LifecyclePolicy {
                idle_ttl: Some(6),
                ..LifecyclePolicy::default()
            },
        );
        let hot = registry.register(rs_spec()).unwrap();
        let cold = registry.register(ss_spec()).unwrap();
        for _ in 0..10 {
            registry.estimate(hot).unwrap();
        }
        assert!(registry.is_live(hot), "active session must stay resident");
        assert!(!registry.is_live(cold), "idle session must spill");
        assert!(registry.store().unwrap().contains(cold));
        // Touching the cold session revives it transparently.
        registry.estimate(cold).unwrap();
        assert!(registry.is_live(cold));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_and_recover_resume_the_full_tenant_set() {
        let dir = scratch("drain");
        let events = stream();
        let control = SessionRegistry::new();
        let cid = control.register(rs_spec()).unwrap();
        for event in &events {
            control
                .apply_events(cid, std::slice::from_ref(event))
                .unwrap();
        }
        let first = lifecycle(&dir, LifecyclePolicy::default());
        let a = first.register(rs_spec()).unwrap();
        let b = first.register(ss_spec()).unwrap();
        for event in &events[..2] {
            first.apply_events(a, std::slice::from_ref(event)).unwrap();
            first.apply_events(b, std::slice::from_ref(event)).unwrap();
        }
        assert_eq!(first.drain_to_store().unwrap(), 2);
        drop(first);
        // Fresh process over the same spill directory.
        let second = lifecycle(&dir, LifecyclePolicy::default());
        assert_eq!(second.recover_from_store().unwrap(), 2);
        assert_eq!(second.ids(), vec![a, b], "ids survive the restart");
        assert!(!second.is_live(a) && !second.is_live(b));
        for event in &events[2..] {
            second.apply_events(a, std::slice::from_ref(event)).unwrap();
            second.apply_events(b, std::slice::from_ref(event)).unwrap();
        }
        assert_eq!(
            bits(&second.estimate(a).unwrap()),
            bits(&control.estimate(cid).unwrap()),
            "drain/recover diverged from the uninterrupted stream"
        );
        // New registrations never collide with recovered ids.
        let fresh = second.register(rs_spec()).unwrap();
        assert!(fresh > b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_through_survives_an_abrupt_kill() {
        let dir = scratch("wt");
        let events = stream();
        let control = SessionRegistry::new();
        let cid = control.register(rs_spec()).unwrap();
        control.apply_events(cid, &events[..2]).unwrap();
        let first = lifecycle(
            &dir,
            LifecyclePolicy {
                write_through: true,
                ..LifecyclePolicy::default()
            },
        );
        let id = first.register(rs_spec()).unwrap();
        first.apply_events(id, &events[..2]).unwrap();
        // Abrupt kill: no drain call. The write-through spill must hold
        // every acknowledged request.
        drop(first);
        let second = lifecycle(&dir, LifecyclePolicy::default());
        assert_eq!(second.recover_from_store().unwrap(), 1);
        assert_eq!(
            bits(&second.estimate(id).unwrap()),
            bits(&control.estimate(cid).unwrap()),
            "write-through lost an acknowledged request"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_missing_spill_records_fail_typed_and_are_dropped() {
        let dir = scratch("corrupt");
        let registry = lifecycle(&dir, LifecyclePolicy::default());
        let torn = registry.register(rs_spec()).unwrap();
        let vanished = registry.register(rs_spec()).unwrap();
        let healthy = registry.register(ss_spec()).unwrap();
        let healthy_before = bits(&registry.estimate(healthy).unwrap());
        assert!(registry.evict(torn).unwrap());
        assert!(registry.evict(vanished).unwrap());
        // Tear one record mid-file; delete the other outright.
        let store = registry.store().unwrap();
        let full = std::fs::read(store.path_for(torn)).unwrap();
        std::fs::write(store.path_for(torn), &full[..full.len() / 2]).unwrap();
        std::fs::remove_file(store.path_for(vanished)).unwrap();
        assert!(matches!(
            registry.estimate(torn),
            Err(SessionError::Codec(_))
        ));
        assert!(matches!(
            registry.estimate(vanished),
            Err(SessionError::Spill(SpillError::Missing(_)))
        ));
        // Both are gone (typed error once, then unknown), the torn file is
        // cleaned up, and the healthy tenant is untouched.
        assert!(matches!(
            registry.estimate(torn),
            Err(SessionError::UnknownSession(_))
        ));
        assert!(!store.contains(torn));
        assert_eq!(registry.stats().corrupt_dropped, 2);
        assert_eq!(registry.ids(), vec![healthy]);
        assert_eq!(bits(&registry.estimate(healthy).unwrap()), healthy_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_evict_requires_a_store_and_skips_pinned_sessions() {
        let no_store = SessionRegistry::new();
        let id = no_store.register(rs_spec()).unwrap();
        assert!(matches!(no_store.evict(id), Err(SessionError::NoStore)));
        assert!(matches!(
            no_store.drain_to_store(),
            Err(SessionError::NoStore)
        ));
        let dir = scratch("pinned");
        let registry = lifecycle(&dir, LifecyclePolicy::default());
        assert!(matches!(
            registry.evict(42),
            Err(SessionError::UnknownSession(42))
        ));
        let id = registry.register(rs_spec()).unwrap();
        let guard = registry.acquire(id).unwrap();
        assert!(
            !registry.evict(id).unwrap(),
            "pinned session must not evict"
        );
        drop(guard);
        assert!(registry.evict(id).unwrap());
        assert!(!registry.evict(id).unwrap(), "already spilled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_measures_the_live_population() {
        // Retract every false-labeled base triple: the live population is
        // then all-true, so a live-view audit must report exactly 1.0.
        // (The old gross-population audit kept sampling retracted triples
        // and reported < 1.0 — the bug this pins down.)
        let mut spec = rs_spec();
        spec.base_sizes = (0..40).map(|i| 1 + (i % 7)).collect();
        let registry = SessionRegistry::new();
        let id = registry.register(spec.clone()).unwrap();
        let oracle = RemOracle::new(spec.oracle_accuracy, spec.oracle_seed);
        let mut entries: Vec<(u32, Vec<u32>)> = Vec::new();
        for (c, &size) in spec.base_sizes.iter().enumerate() {
            let dead: Vec<u32> = (0..size)
                .filter(|&off| !oracle.label(TripleRef::new(c as u32, off)))
                .collect();
            if !dead.is_empty() {
                entries.push((c as u32, dead));
            }
        }
        assert!(!entries.is_empty(), "oracle at 0.9 must mislabel something");
        let retract = KgEvent::Retract(Retraction::new(entries).unwrap());
        registry.apply_events(id, &[retract]).unwrap();
        let report = registry.audit(id, 200, 0xBEEF).unwrap();
        assert_eq!(
            report.estimate.mean.to_bits(),
            1.0f64.to_bits(),
            "audit sampled retracted triples: mean {}",
            report.estimate.mean
        );
    }

    #[test]
    fn audit_is_stable_across_spill_revival() {
        let dir = scratch("audit-spill");
        let control = SessionRegistry::new();
        let churned = lifecycle(
            &dir,
            LifecyclePolicy {
                max_live: Some(1),
                ..LifecyclePolicy::default()
            },
        );
        let cid = control.register(rs_spec()).unwrap();
        let id = churned.register(rs_spec()).unwrap();
        let other = churned.register(ss_spec()).unwrap();
        for event in stream() {
            control
                .apply_events(cid, std::slice::from_ref(&event))
                .unwrap();
            churned
                .apply_events(id, std::slice::from_ref(&event))
                .unwrap();
            churned.apply_events(other, &[event]).unwrap();
        }
        let want = control.audit(cid, 400, 0x5EED).unwrap();
        let got = churned.audit(id, 400, 0x5EED).unwrap();
        assert_eq!(got.estimate.mean.to_bits(), want.estimate.mean.to_bits());
        assert_eq!(
            got.estimate.var_of_mean.to_bits(),
            want.estimate.var_of_mean.to_bits()
        );
        assert_eq!(got.labeled, want.labeled);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! One-call façade over the static evaluation loop.

use crate::config::EvalConfig;
use crate::report::EvaluationReport;
use crate::static_eval::run_static;
use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::oracle::LabelOracle;
use kg_model::implicit::ClusterPopulation;
use kg_sampling::design::Design;
use kg_sampling::stratified::StratificationStrategy;
use kg_sampling::PopulationIndex;
use kg_stats::error::StatsError;
use rand::RngCore;
use std::sync::Arc;

/// Evaluator: a sampling design plus a cost model, runnable against any
/// population + oracle.
#[derive(Debug, Clone)]
pub struct Evaluator {
    design: Design,
    cost: CostModel,
}

impl Evaluator {
    /// Evaluator over an explicit design.
    pub fn new(design: Design) -> Self {
        Evaluator {
            design,
            cost: CostModel::default(),
        }
    }

    /// Simple random sampling (§5.1).
    pub fn srs() -> Self {
        Self::new(Design::Srs)
    }

    /// Random cluster sampling (§5.2.1).
    pub fn rcs() -> Self {
        Self::new(Design::Rcs)
    }

    /// Weighted cluster sampling (§5.2.2).
    pub fn wcs() -> Self {
        Self::new(Design::Wcs)
    }

    /// Two-stage weighted cluster sampling with cap `m` (§5.2.3). The
    /// paper's guideline: `m` in 3–5 is near-optimal across all KGs studied
    /// (§7.2.2).
    pub fn twcs(m: usize) -> Self {
        Self::new(Design::Twcs { m })
    }

    /// TWCS with size stratification (cumulative-√F, §5.3).
    pub fn twcs_size_stratified(m: usize, strata: usize) -> Self {
        Self::new(Design::StratifiedTwcs {
            m,
            strategy: StratificationStrategy::Size { strata },
        })
    }

    /// TWCS with oracle (accuracy) stratification — the Table 7 lower
    /// bound; requires the oracle to reveal expected cluster accuracies.
    pub fn twcs_oracle_stratified(m: usize, strata: usize) -> Self {
        Self::new(Design::StratifiedTwcs {
            m,
            strategy: StratificationStrategy::Oracle { strata },
        })
    }

    /// Replace the cost model (default: the paper's c1=45 s, c2=25 s).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The underlying design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Evaluate `pop`'s accuracy against `oracle` until the config's MoE
    /// target is met.
    pub fn run<P: ClusterPopulation + ?Sized>(
        &self,
        pop: &P,
        oracle: &dyn LabelOracle,
        config: &EvalConfig,
        rng: &mut dyn RngCore,
    ) -> Result<EvaluationReport, StatsError> {
        let index = Arc::new(PopulationIndex::from_population(pop)?);
        self.run_with_index(index, oracle, config, rng)
    }

    /// Evaluate over a pre-built (shared) population index — avoids
    /// rebuilding the alias table across experiment trials.
    pub fn run_with_index(
        &self,
        index: Arc<PopulationIndex>,
        oracle: &dyn LabelOracle,
        config: &EvalConfig,
        rng: &mut dyn RngCore,
    ) -> Result<EvaluationReport, StatsError> {
        let mut annotator = SimulatedAnnotator::new(oracle, self.cost);
        self.run_with_annotator(index, oracle, &mut annotator, config, rng)
    }

    /// Evaluate with a caller-supplied annotation engine — this is how the
    /// dense fast path is driven: materialize a `LabelStore` once per KG,
    /// keep one `DenseAnnotator` arena, and `reset()` it between trials
    /// instead of rebuilding hash tables. `oracle` is still consulted for
    /// stratification strategies that rank clusters by accuracy.
    ///
    /// Note the engine carries its own cost model; this evaluator's
    /// [`Evaluator::with_cost_model`] setting applies only to the
    /// annotators it constructs itself.
    pub fn run_with_annotator(
        &self,
        index: Arc<PopulationIndex>,
        oracle: &dyn LabelOracle,
        annotator: &mut dyn Annotator,
        config: &EvalConfig,
        rng: &mut dyn RngCore,
    ) -> Result<EvaluationReport, StatsError> {
        let mut design = self.design.instantiate(index, oracle);
        Ok(run_static(design.as_mut(), annotator, config, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::oracle::{true_accuracy, RemOracle};
    use kg_model::implicit::ImplicitKg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kg() -> ImplicitKg {
        ImplicitKg::new((0..3000).map(|i| 1 + (i % 15)).collect()).unwrap()
    }

    #[test]
    fn all_designs_converge_and_agree() {
        let kg = kg();
        let oracle = RemOracle::new(0.85, 12);
        let truth = true_accuracy(&kg, &oracle);
        let config = EvalConfig::default();
        for (i, eval) in [
            Evaluator::srs(),
            Evaluator::wcs(),
            Evaluator::twcs(5),
            Evaluator::twcs_size_stratified(5, 3),
            Evaluator::twcs_oracle_stratified(5, 3),
        ]
        .into_iter()
        .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            let report = eval.run(&kg, &oracle, &config, &mut rng).unwrap();
            assert!(report.converged, "{}", report.summary());
            assert!(
                (report.estimate.mean - truth).abs() < 0.08,
                "{}: {} vs truth {}",
                report.design,
                report.estimate.mean,
                truth
            );
        }
    }

    #[test]
    fn twcs_costs_less_than_srs_on_clustered_kg() {
        // Averaged over seeds, TWCS's entity-identification savings beat
        // SRS on a KG with sizable clusters.
        let kg = kg();
        let oracle = RemOracle::new(0.9, 3);
        let config = EvalConfig::default();
        let mut srs_cost = 0.0;
        let mut twcs_cost = 0.0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            srs_cost += Evaluator::srs()
                .run(&kg, &oracle, &config, &mut rng)
                .unwrap()
                .cost_seconds;
            let mut rng = StdRng::seed_from_u64(seed + 999);
            twcs_cost += Evaluator::twcs(4)
                .run(&kg, &oracle, &config, &mut rng)
                .unwrap()
                .cost_seconds;
        }
        assert!(
            twcs_cost < srs_cost,
            "TWCS {twcs_cost} should beat SRS {srs_cost}"
        );
    }

    #[test]
    fn custom_cost_model_scales_reported_cost() {
        let kg = kg();
        let oracle = RemOracle::new(0.9, 3);
        let config = EvalConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let cheap = Evaluator::twcs(5)
            .with_cost_model(CostModel::new(1.0, 1.0))
            .run(&kg, &oracle, &config, &mut rng)
            .unwrap();
        let expected = cheap.entities_identified as f64 + cheap.triples_annotated as f64;
        assert!((cheap.cost_seconds - expected).abs() < 1e-9);
    }

    #[test]
    fn design_accessor_round_trips() {
        let e = Evaluator::twcs(7);
        match e.design() {
            Design::Twcs { m } => assert_eq!(*m, 7),
            other => panic!("unexpected design {other:?}"),
        }
    }
}

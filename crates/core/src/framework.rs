//! One-call façade over the static evaluation loop, plus its parallel
//! repeated-trial fan-out on the [`TrialExecutor`].

use crate::config::EvalConfig;
use crate::executor::TrialExecutor;
use crate::report::EvaluationReport;
use crate::sharded::{ShardDesign, ShardReplayReport, ShardedReplay};
use crate::static_eval::run_static;
use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::lease::DenseArenaPool;
use kg_annotate::oracle::LabelOracle;
use kg_model::implicit::ClusterPopulation;
use kg_sampling::design::Design;
use kg_sampling::stratified::StratificationStrategy;
use kg_sampling::PopulationIndex;
use kg_stats::error::StatsError;
use kg_stats::RunningMoments;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;

/// Per-metric aggregates over repeated seeded evaluations, produced by
/// [`Evaluator::run_trials`] / [`Evaluator::run_trials_dense`]. Each field
/// is a [`RunningMoments`] over one [`EvaluationReport`] metric;
/// `converged.mean()` is the convergence rate. Aggregation runs on the
/// [`TrialExecutor`], so every moment is bitwise identical at any worker
/// count.
#[derive(Debug, Clone)]
pub struct TrialAggregate {
    /// Trials executed.
    pub trials: u64,
    /// Accuracy estimates (`estimate.mean` per trial).
    pub estimate: RunningMoments,
    /// Achieved margins of error.
    pub moe: RunningMoments,
    /// Simulated human seconds.
    pub cost_seconds: RunningMoments,
    /// Sampling units drawn.
    pub units: RunningMoments,
    /// Distinct triples annotated.
    pub triples_annotated: RunningMoments,
    /// Distinct entities identified.
    pub entities_identified: RunningMoments,
    /// Convergence indicator (1.0 = converged).
    pub converged: RunningMoments,
}

impl TrialAggregate {
    const METRICS: usize = 7;

    fn metrics_of(report: &EvaluationReport) -> Vec<f64> {
        vec![
            report.estimate.mean,
            report.moe,
            report.cost_seconds,
            report.units as f64,
            report.triples_annotated as f64,
            report.entities_identified as f64,
            report.converged as u64 as f64,
        ]
    }

    fn from_stats(trials: u64, mut stats: Vec<RunningMoments>) -> Self {
        assert_eq!(stats.len(), Self::METRICS);
        let converged = stats.pop().expect("metric count checked");
        let entities_identified = stats.pop().expect("metric count checked");
        let triples_annotated = stats.pop().expect("metric count checked");
        let units = stats.pop().expect("metric count checked");
        let cost_seconds = stats.pop().expect("metric count checked");
        let moe = stats.pop().expect("metric count checked");
        let estimate = stats.pop().expect("metric count checked");
        TrialAggregate {
            trials,
            estimate,
            moe,
            cost_seconds,
            units,
            triples_annotated,
            entities_identified,
            converged,
        }
    }
}

/// Evaluator: a sampling design plus a cost model, runnable against any
/// population + oracle.
#[derive(Debug, Clone)]
pub struct Evaluator {
    design: Design,
    cost: CostModel,
}

impl Evaluator {
    /// Evaluator over an explicit design.
    pub fn new(design: Design) -> Self {
        Evaluator {
            design,
            cost: CostModel::default(),
        }
    }

    /// Simple random sampling (§5.1).
    pub fn srs() -> Self {
        Self::new(Design::Srs)
    }

    /// Random cluster sampling (§5.2.1).
    pub fn rcs() -> Self {
        Self::new(Design::Rcs)
    }

    /// Weighted cluster sampling (§5.2.2).
    pub fn wcs() -> Self {
        Self::new(Design::Wcs)
    }

    /// Two-stage weighted cluster sampling with cap `m` (§5.2.3). The
    /// paper's guideline: `m` in 3–5 is near-optimal across all KGs studied
    /// (§7.2.2).
    pub fn twcs(m: usize) -> Self {
        Self::new(Design::Twcs { m })
    }

    /// TWCS with size stratification (cumulative-√F, §5.3).
    pub fn twcs_size_stratified(m: usize, strata: usize) -> Self {
        Self::new(Design::StratifiedTwcs {
            m,
            strategy: StratificationStrategy::Size { strata },
        })
    }

    /// TWCS with oracle (accuracy) stratification — the Table 7 lower
    /// bound; requires the oracle to reveal expected cluster accuracies.
    pub fn twcs_oracle_stratified(m: usize, strata: usize) -> Self {
        Self::new(Design::StratifiedTwcs {
            m,
            strategy: StratificationStrategy::Oracle { strata },
        })
    }

    /// Replace the cost model (default: the paper's c1=45 s, c2=25 s).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The underlying design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Evaluate `pop`'s accuracy against `oracle` until the config's MoE
    /// target is met.
    pub fn run<P: ClusterPopulation + ?Sized>(
        &self,
        pop: &P,
        oracle: &dyn LabelOracle,
        config: &EvalConfig,
        rng: &mut dyn RngCore,
    ) -> Result<EvaluationReport, StatsError> {
        let index = Arc::new(PopulationIndex::from_population(pop)?);
        self.run_with_index(index, oracle, config, rng)
    }

    /// Evaluate over a pre-built (shared) population index — avoids
    /// rebuilding the alias table across experiment trials.
    pub fn run_with_index(
        &self,
        index: Arc<PopulationIndex>,
        oracle: &dyn LabelOracle,
        config: &EvalConfig,
        rng: &mut dyn RngCore,
    ) -> Result<EvaluationReport, StatsError> {
        let mut annotator = SimulatedAnnotator::new(oracle, self.cost);
        self.run_with_annotator(index, oracle, &mut annotator, config, rng)
    }

    /// Evaluate with a caller-supplied annotation engine — this is how the
    /// dense fast path is driven: materialize a `LabelStore` once per KG,
    /// keep one `DenseAnnotator` arena, and `reset()` it between trials
    /// instead of rebuilding hash tables. `oracle` is still consulted for
    /// stratification strategies that rank clusters by accuracy.
    ///
    /// Note the engine carries its own cost model; this evaluator's
    /// [`Evaluator::with_cost_model`] setting applies only to the
    /// annotators it constructs itself.
    pub fn run_with_annotator(
        &self,
        index: Arc<PopulationIndex>,
        oracle: &dyn LabelOracle,
        annotator: &mut dyn Annotator,
        config: &EvalConfig,
        rng: &mut dyn RngCore,
    ) -> Result<EvaluationReport, StatsError> {
        let mut design = self.design.instantiate(index, oracle);
        Ok(run_static(design.as_mut(), annotator, config, rng))
    }

    /// Run `trials` independent seeded evaluations on the hash engine — a
    /// fresh [`SimulatedAnnotator`] per trial, exactly the semantics every
    /// repeated-trial experiment always had — sharded across the
    /// executor's workers. Trial `i` uses the counter-based seed
    /// [`crate::executor::trial_seed`]`(base_seed, i)` for its sampling
    /// RNG, and the aggregates are **bitwise identical at any worker
    /// count**.
    pub fn run_trials(
        &self,
        index: &Arc<PopulationIndex>,
        oracle: &dyn LabelOracle,
        config: &EvalConfig,
        exec: &TrialExecutor,
        trials: u64,
        base_seed: u64,
    ) -> TrialAggregate {
        let stats = exec.run(trials, base_seed, TrialAggregate::METRICS, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut annotator = SimulatedAnnotator::new(oracle, self.cost);
            let report = self
                .run_with_annotator(index.clone(), oracle, &mut annotator, config, &mut rng)
                .expect("static evaluation over a prebuilt index is infallible");
            TrialAggregate::metrics_of(&report)
        });
        TrialAggregate::from_stats(trials, stats)
    }

    /// [`Evaluator::run_trials`] on the dense engine: each worker leases
    /// one reusable arena from `pool` for its whole lifetime and `reset()`s
    /// it per trial, so arenas are built at most once per worker instead of
    /// once per trial. Identical draw sequences make the aggregates
    /// byte-identical to [`Evaluator::run_trials`] with the matching
    /// oracle and cost model (and, as above, to any worker count).
    ///
    /// `oracle` is still consulted by stratification strategies that rank
    /// clusters; the leased arenas read labels from the pool's store.
    // One parameter per independent experiment knob; bundling them into a
    // one-off struct would only rename the arity.
    #[allow(clippy::too_many_arguments)]
    pub fn run_trials_dense(
        &self,
        index: &Arc<PopulationIndex>,
        oracle: &dyn LabelOracle,
        pool: &DenseArenaPool,
        config: &EvalConfig,
        exec: &TrialExecutor,
        trials: u64,
        base_seed: u64,
    ) -> TrialAggregate {
        let stats = exec.run_with(
            trials,
            base_seed,
            TrialAggregate::METRICS,
            || pool.checkout(),
            |arena, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                arena.reset();
                let report = self
                    .run_with_annotator(index.clone(), oracle, arena.arena_mut(), config, &mut rng)
                    .expect("static evaluation over a prebuilt index is infallible");
                TrialAggregate::metrics_of(&report)
            },
        );
        TrialAggregate::from_stats(trials, stats)
    }

    /// Sharded single-trial replay on the hash engine: the trial's cluster
    /// walk is partitioned into fixed shards and fanned out across
    /// `replay`'s workers (see [`crate::sharded`] for the invariance
    /// recipe and the one-time stream change vs. the adaptive loop).
    /// Returns `None` when the design's visit sequence is not
    /// flat-partitionable (SRS, RCS, stratified designs).
    pub fn replay_sharded(
        &self,
        index: &PopulationIndex,
        oracle: &dyn LabelOracle,
        replay: &ShardedReplay,
        units: u64,
        trial_seed: u64,
    ) -> Option<ShardReplayReport> {
        let design = ShardDesign::from_design(&self.design)?;
        Some(replay.replay_hash(design, index, oracle, self.cost, units, trial_seed))
    }

    /// [`Evaluator::replay_sharded`] on the dense engine: one arena per
    /// shard worker, leased from `pool` in a single lock acquisition.
    /// Byte-identical to the hash path over the matching oracle and cost
    /// model.
    pub fn replay_sharded_dense(
        &self,
        index: &PopulationIndex,
        pool: &DenseArenaPool,
        replay: &ShardedReplay,
        units: u64,
        trial_seed: u64,
    ) -> Option<ShardReplayReport> {
        let design = ShardDesign::from_design(&self.design)?;
        Some(replay.replay_dense(design, index, pool, units, trial_seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::oracle::{true_accuracy, RemOracle};
    use kg_model::implicit::ImplicitKg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kg() -> ImplicitKg {
        ImplicitKg::new((0..3000).map(|i| 1 + (i % 15)).collect()).unwrap()
    }

    #[test]
    fn all_designs_converge_and_agree() {
        let kg = kg();
        let oracle = RemOracle::new(0.85, 12);
        let truth = true_accuracy(&kg, &oracle);
        let config = EvalConfig::default();
        for (i, eval) in [
            Evaluator::srs(),
            Evaluator::wcs(),
            Evaluator::twcs(5),
            Evaluator::twcs_size_stratified(5, 3),
            Evaluator::twcs_oracle_stratified(5, 3),
        ]
        .into_iter()
        .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            let report = eval.run(&kg, &oracle, &config, &mut rng).unwrap();
            assert!(report.converged, "{}", report.summary());
            assert!(
                (report.estimate.mean - truth).abs() < 0.08,
                "{}: {} vs truth {}",
                report.design,
                report.estimate.mean,
                truth
            );
        }
    }

    #[test]
    fn twcs_costs_less_than_srs_on_clustered_kg() {
        // Averaged over seeds, TWCS's entity-identification savings beat
        // SRS on a KG with sizable clusters.
        let kg = kg();
        let oracle = RemOracle::new(0.9, 3);
        let config = EvalConfig::default();
        let mut srs_cost = 0.0;
        let mut twcs_cost = 0.0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            srs_cost += Evaluator::srs()
                .run(&kg, &oracle, &config, &mut rng)
                .unwrap()
                .cost_seconds;
            let mut rng = StdRng::seed_from_u64(seed + 999);
            twcs_cost += Evaluator::twcs(4)
                .run(&kg, &oracle, &config, &mut rng)
                .unwrap()
                .cost_seconds;
        }
        assert!(
            twcs_cost < srs_cost,
            "TWCS {twcs_cost} should beat SRS {srs_cost}"
        );
    }

    #[test]
    fn custom_cost_model_scales_reported_cost() {
        let kg = kg();
        let oracle = RemOracle::new(0.9, 3);
        let config = EvalConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let cheap = Evaluator::twcs(5)
            .with_cost_model(CostModel::new(1.0, 1.0))
            .run(&kg, &oracle, &config, &mut rng)
            .unwrap();
        let expected = cheap.entities_identified as f64 + cheap.triples_annotated as f64;
        assert!((cheap.cost_seconds - expected).abs() < 1e-9);
    }

    #[test]
    fn design_accessor_round_trips() {
        let e = Evaluator::twcs(7);
        match e.design() {
            Design::Twcs { m } => assert_eq!(*m, 7),
            other => panic!("unexpected design {other:?}"),
        }
    }

    fn aggregate_bits(a: &TrialAggregate) -> Vec<(u64, u64, u64)> {
        [
            &a.estimate,
            &a.moe,
            &a.cost_seconds,
            &a.units,
            &a.triples_annotated,
            &a.entities_identified,
            &a.converged,
        ]
        .iter()
        .map(|m| (m.mean().to_bits(), m.sample_std().to_bits(), m.count()))
        .collect()
    }

    #[test]
    fn parallel_trials_match_sequential_replay_and_worker_counts() {
        let kg = kg();
        let oracle = RemOracle::new(0.85, 12);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let config = EvalConfig::default();
        let eval = Evaluator::twcs(5);
        let trials = 12u64;
        let one = TrialExecutor::new().with_workers(1);
        let many = TrialExecutor::new().with_workers(5);
        let a = eval.run_trials(&idx, &oracle, &config, &one, trials, 400);
        let b = eval.run_trials(&idx, &oracle, &config, &many, trials, 400);
        assert_eq!(a.trials, trials);
        assert_eq!(a.converged.mean(), 1.0);
        assert_eq!(aggregate_bits(&a), aggregate_bits(&b));
        // The aggregate matches running the same seeds by hand.
        let mut by_hand = RunningMoments::new();
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(crate::executor::trial_seed(400, t));
            let r = eval
                .run_with_index(idx.clone(), &oracle, &config, &mut rng)
                .unwrap();
            by_hand.push(r.estimate.mean);
        }
        assert!((a.estimate.mean() - by_hand.mean()).abs() < 1e-12);
        assert_eq!(a.estimate.count(), by_hand.count());
    }

    #[test]
    fn dense_trials_are_byte_identical_to_hash_at_any_worker_count() {
        use kg_annotate::lease::DenseArenaPool;

        let kg = kg();
        let oracle = RemOracle::new(0.85, 12);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let store = Arc::new(idx.materialize_labels(&oracle));
        let pool = DenseArenaPool::new(store, CostModel::default());
        let config = EvalConfig::default();
        let eval = Evaluator::wcs();
        let trials = 10u64;
        let hash = eval.run_trials(
            &idx,
            &oracle,
            &config,
            &TrialExecutor::new().with_workers(3),
            trials,
            77,
        );
        let d3 = eval.run_trials_dense(
            &idx,
            &oracle,
            &pool,
            &config,
            &TrialExecutor::new().with_workers(3),
            trials,
            77,
        );
        let d1 = eval.run_trials_dense(
            &idx,
            &oracle,
            &pool,
            &config,
            &TrialExecutor::new().with_workers(1),
            trials,
            77,
        );
        assert_eq!(aggregate_bits(&hash), aggregate_bits(&d3));
        assert_eq!(aggregate_bits(&d1), aggregate_bits(&d3));
        // Arenas were leased per worker, not per trial.
        assert!(pool.arenas_built() <= 4, "built {}", pool.arenas_built());
    }
}

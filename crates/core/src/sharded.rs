//! Intra-trial sharded replay: one trial's cluster walk partitioned into
//! fixed shards and fanned out across workers, bitwise identical at any
//! shard-worker count.
//!
//! [`crate::executor::TrialExecutor`] parallelizes *across* trials; a
//! single 10^7-triple replay still ran on one core, and single-replay
//! latency is what a serving layer exposes to users. This module takes the
//! same invariance recipe one level down, into the trial itself:
//!
//! * **Fixed shard partition** — a replay of `units` cluster visits is cut
//!   into `units.div_ceil(shard_units)` shards of [`ShardedReplay::shard_units`]
//!   visits each. The partition is a pure function of `(units,
//!   shard_units)`; [`ShardedReplay::with_shard_workers`] (and the
//!   `KG_EVAL_SHARDS` environment variable) only choose how many threads
//!   *claim* those shards. Results are therefore invariant to the worker
//!   count **by construction** — the same split PR 4 made between trial
//!   count and `KG_EVAL_WORKERS`.
//! * **Counter-based shard substreams** — shard `s` draws from
//!   [`crate::executor::shard_seed`]`(trial_seed, s)`; what a shard
//!   computes depends only on `(trial_seed, s)`, never on which worker ran
//!   it or when.
//! * **Shard-local annotation scratch** — each worker leases one arena
//!   ([`DenseArenaPool::checkout_many`] — one lock acquisition for the
//!   whole worker set) or builds one hash annotator, reset at every shard
//!   boundary so a shard's memo state is self-contained.
//! * **Fixed-shape tree reduction** — per-shard aggregates (accuracy
//!   moments, labeled / correct / entity counts, cost seconds) merge
//!   pairwise over the *shard index*, fixing the float summation order
//!   regardless of completion schedule.
//!
//! # The one-time stream change
//!
//! Exactly as PR 4 re-keyed per-trial streams once to make them
//! schedule-free, sharded replay is a **different stream** from the
//! unsharded adaptive loop — and then frozen. Two deliberate differences:
//!
//! 1. The adaptive margin-of-error stopping rule of
//!    [`run_static`](crate::static_eval::run_static) is inherently
//!    sequential (each batch decides whether the next exists), so sharded
//!    replay takes a **fixed visit count** up front and the estimate is
//!    computed once at the end. Shard 0 of a 1-shard replay consumes the
//!    seed stream `shard_seed(trial_seed, 0) == trial_seed`, but the walk
//!    is batched differently from the adaptive loop, so numbers are not
//!    comparable across the two entry points — only across shard-worker
//!    counts within this one.
//! 2. Annotation memoization is **scoped to the shard**: a cluster visited
//!    by two shards is annotated (and charged) by both. The `labeled` /
//!    `entities` / `cost_seconds` fields of [`ShardReplayReport`] are
//!    therefore sums of shard-scoped counters — deterministic and
//!    shard-partition-stable, but an upper bound on the unsharded
//!    distinct-annotation cost. The estimator itself is unaffected:
//!    accuracy draws depend only on labels, not on memo hits.

use crate::executor::{shard_seed, ENV_SHARDS};
use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::lease::DenseArenaPool;
use kg_annotate::oracle::LabelOracle;
use kg_sampling::design::Design;
use kg_sampling::twcs::floored_variance_of_mean;
use kg_sampling::PopulationIndex;
use kg_stats::srswor::sample_without_replacement_into;
use kg_stats::{PointEstimate, RunningMoments};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};

/// The shardable subset of [`Design`]: designs whose draw loop is a flat
/// sequence of independent PPS cluster visits. The adaptive /
/// stratified designs carry sequential state between draws and fall back
/// to the unsharded path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardDesign {
    /// WCS (§5.2.2): every sampled cluster fully annotated.
    FullCluster,
    /// TWCS (§5.2.3): per sampled cluster, `min{size, m}` triples drawn
    /// without replacement.
    TwoStage {
        /// Second-stage cap.
        m: usize,
    },
}

impl ShardDesign {
    /// The sharded counterpart of `design`, if its visit sequence is
    /// flat-partitionable. SRS visits triples rather than clusters and the
    /// stratified designs allocate draws across strata sequentially, so
    /// they return `None`.
    pub fn from_design(design: &Design) -> Option<Self> {
        match design {
            Design::Wcs => Some(ShardDesign::FullCluster),
            Design::Twcs { m } => Some(ShardDesign::TwoStage { m: *m }),
            _ => None,
        }
    }

    /// Report label for the design.
    pub fn name(&self) -> &'static str {
        match self {
            ShardDesign::FullCluster => "WCS/sharded",
            ShardDesign::TwoStage { .. } => "TWCS/sharded",
        }
    }
}

/// Configuration for a sharded replay: how large the fixed shards are and
/// how many workers claim them.
#[derive(Debug, Clone, Copy)]
pub struct ShardedReplay {
    shard_workers: Option<NonZeroUsize>,
    shard_units: usize,
}

/// Default cluster visits per shard. Part of the stream contract: changing
/// it re-keys every shard substream past the first.
pub const DEFAULT_SHARD_UNITS: usize = 256;

impl Default for ShardedReplay {
    fn default() -> Self {
        ShardedReplay {
            shard_workers: None,
            shard_units: DEFAULT_SHARD_UNITS,
        }
    }
}

impl ShardedReplay {
    /// Replay with the default shard size and worker resolution
    /// (`KG_EVAL_SHARDS`, else available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Force an exact shard-worker count (≥ 1), overriding the
    /// environment. Results are bitwise identical for every choice; this
    /// exists for regression tests and scaling benchmarks.
    pub fn with_shard_workers(mut self, workers: usize) -> Self {
        self.shard_workers =
            Some(NonZeroUsize::new(workers).expect("shard worker count must be at least 1"));
        self
    }

    /// Override the shard size (≥ 1 visits per shard). **Changes the
    /// stream**: the shard partition and every shard substream past the
    /// first are keyed by this value, so two replays agree bitwise only
    /// when their shard sizes agree.
    pub fn with_shard_units(mut self, shard_units: usize) -> Self {
        assert!(shard_units >= 1, "shard size must be at least 1");
        self.shard_units = shard_units;
        self
    }

    /// Visits per shard.
    pub fn shard_units(&self) -> usize {
        self.shard_units
    }

    /// The shard-worker count this replay resolves to right now (before
    /// the per-run cap at the shard count).
    pub fn shard_workers(&self) -> usize {
        if let Some(n) = self.shard_workers {
            return n.get();
        }
        if let Ok(v) = std::env::var(ENV_SHARDS) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// How many shards a replay of `units` visits splits into.
    pub fn num_shards(&self, units: u64) -> u64 {
        units.div_ceil(self.shard_units as u64)
    }

    /// Sharded replay on the hash engine: each worker owns one
    /// [`SimulatedAnnotator`], rebuilt at every shard boundary.
    pub fn replay_hash(
        &self,
        design: ShardDesign,
        index: &PopulationIndex,
        oracle: &dyn LabelOracle,
        cost: CostModel,
        units: u64,
        trial_seed: u64,
    ) -> ShardReplayReport {
        let workers = self.resolved_workers(units);
        let ctxs: Vec<SimulatedAnnotator> = (0..workers)
            .map(|_| SimulatedAnnotator::new(oracle, cost))
            .collect();
        self.replay_core(design, index, units, trial_seed, ctxs, |a| {
            *a = SimulatedAnnotator::new(oracle, cost);
            a
        })
    }

    /// Sharded replay on the dense engine: one arena per worker, all
    /// leased from `pool` in a single lock acquisition, reset at every
    /// shard boundary. Byte-identical to [`ShardedReplay::replay_hash`]
    /// with the matching oracle and cost model.
    pub fn replay_dense(
        &self,
        design: ShardDesign,
        index: &PopulationIndex,
        pool: &DenseArenaPool,
        units: u64,
        trial_seed: u64,
    ) -> ShardReplayReport {
        let workers = self.resolved_workers(units);
        let ctxs = pool.checkout_many(workers);
        self.replay_core(design, index, units, trial_seed, ctxs, |lease| {
            lease.reset();
            lease.arena_mut()
        })
    }

    fn resolved_workers(&self, units: u64) -> usize {
        self.shard_workers()
            .min(usize::try_from(self.num_shards(units)).unwrap_or(usize::MAX))
            .max(1)
    }

    /// Engine-generic core: `ctxs` holds one annotation context per
    /// worker; `prep` readies a context for a fresh shard (reset or
    /// rebuild) and hands back its engine. Shards are claimed from an
    /// atomic cursor — the schedule is free to be nondeterministic because
    /// every shard is a pure function of `(trial_seed, shard)` and the
    /// merge is a fixed-shape tree over the shard index.
    fn replay_core<C: Send>(
        &self,
        design: ShardDesign,
        index: &PopulationIndex,
        units: u64,
        trial_seed: u64,
        mut ctxs: Vec<C>,
        prep: impl for<'c> Fn(&'c mut C) -> &'c mut (dyn Annotator + 'c) + Sync,
    ) -> ShardReplayReport {
        let shards = self.num_shards(units);
        let parts: Vec<ShardPart> = if ctxs.len() <= 1 && shards <= 1 {
            if units == 0 {
                Vec::new()
            } else {
                let ctx = ctxs.first_mut().expect("resolved_workers is at least 1");
                vec![run_shard(
                    design,
                    index,
                    units,
                    trial_seed,
                    0,
                    self.shard_units,
                    prep(ctx),
                )]
            }
        } else {
            let cursor = AtomicU64::new(0);
            let mut slots: Vec<Option<ShardPart>> = Vec::new();
            slots.resize_with(shards as usize, || None);
            let collected: Vec<Vec<(u64, ShardPart)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ctxs
                    .iter_mut()
                    .map(|ctx| {
                        let (cursor, prep) = (&cursor, &prep);
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            loop {
                                let s = cursor.fetch_add(1, Ordering::Relaxed);
                                if s >= shards {
                                    break;
                                }
                                let part = run_shard(
                                    design,
                                    index,
                                    units,
                                    trial_seed,
                                    s,
                                    self.shard_units,
                                    prep(ctx),
                                );
                                done.push((s, part));
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            });
            // Reassemble in shard order; the schedule's nondeterminism
            // ends here.
            for (s, part) in collected.into_iter().flatten() {
                slots[s as usize] = Some(part);
            }
            slots
                .into_iter()
                .enumerate()
                .map(|(s, p)| p.unwrap_or_else(|| panic!("shard {s} was never executed")))
                .collect()
        };
        let merged = tree_merge(parts);
        ShardReplayReport::from_merged(design, units, shards, self.shard_units, merged)
    }
}

/// Aggregates of one shard's walk; merged pairwise in shard-index order.
#[derive(Debug, Clone, Default)]
struct ShardPart {
    accuracies: RunningMoments,
    labeled: u64,
    correct: u64,
    entities: u64,
    cost_seconds: f64,
}

impl ShardPart {
    fn merge(&mut self, other: &ShardPart) {
        self.accuracies.merge(&other.accuracies);
        self.labeled += other.labeled;
        self.correct += other.correct;
        self.entities += other.entities;
        self.cost_seconds += other.cost_seconds;
    }
}

/// Walk one shard's slice of the visit sequence on a freshly prepared
/// engine, drawing from the shard's counter-based substream.
fn run_shard(
    design: ShardDesign,
    index: &PopulationIndex,
    units: u64,
    trial_seed: u64,
    shard: u64,
    shard_units: usize,
    annotator: &mut dyn Annotator,
) -> ShardPart {
    let start = shard * shard_units as u64;
    let end = (start + shard_units as u64).min(units);
    let mut rng = StdRng::seed_from_u64(shard_seed(trial_seed, shard));
    let mut part = ShardPart::default();
    match design {
        ShardDesign::FullCluster => {
            // Sited draw + sited annotation: id, size, and base all come
            // from the one alias-slot line, so each visit's serial miss
            // chain is slot load → arena stamp (same fast path as
            // `WcsDesign::draw`). Stream-identical to the unsited calls —
            // same RNG consumption, same clusters.
            for _ in start..end {
                let (c, size, base) = index.sample_cluster_pps_sited(&mut rng);
                let tau = annotator.annotate_cluster_sited(c as u32, base, size);
                part.correct += u64::from(tau);
                part.accuracies.push(f64::from(tau) / size as f64);
            }
        }
        ShardDesign::TwoStage { m } => {
            // The second stage draws from the same stream, so visits stay
            // strictly interleaved: hoisting first-stage picks would move
            // their RNG calls ahead of earlier visits' subset draws.
            let mut scratch = Vec::new();
            for _ in start..end {
                let (c, size) = index.sample_cluster_pps_sized(&mut rng);
                // Inlined `annotate_cluster_subset` so the integer τ feeds
                // the `correct` aggregate; the RNG consumption is
                // identical.
                let take = size.min(m.max(1));
                sample_without_replacement_into(&mut rng, size, take, &mut scratch);
                let tau = annotator.annotate_offsets(c as u32, &scratch);
                part.correct += u64::from(tau);
                part.accuracies.push(f64::from(tau) / take as f64);
            }
        }
    }
    part.labeled = annotator.triples_annotated() as u64;
    part.entities = annotator.entities_identified() as u64;
    part.cost_seconds = annotator.seconds();
    part
}

/// Pairwise tree merge over the shard index — the same fixed-shape
/// reduction [`crate::executor`] uses over trials, so the float summation
/// order is a pure function of the shard count.
fn tree_merge(parts: Vec<ShardPart>) -> ShardPart {
    if parts.is_empty() {
        return ShardPart::default();
    }
    let mut level = parts;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut nodes = level.into_iter();
        while let Some(mut left) = nodes.next() {
            if let Some(right) = nodes.next() {
                left.merge(&right);
            }
            next.push(left);
        }
        level = next;
    }
    level.pop().expect("non-empty level")
}

/// The outcome of one sharded replay. All fields are bitwise invariant to
/// the shard-worker count; see the module docs for how `labeled` /
/// `entities` / `cost_seconds` relate to the unsharded path.
#[derive(Debug, Clone)]
pub struct ShardReplayReport {
    /// Design label (e.g. `"WCS/sharded"`).
    pub design: &'static str,
    /// Cluster visits walked.
    pub units: u64,
    /// Shards the walk was partitioned into.
    pub shards: u64,
    /// Visits per shard (the partition key).
    pub shard_units: usize,
    /// The design's accuracy estimate over all visits.
    pub estimate: PointEstimate,
    /// Per-visit accuracy moments behind the estimate.
    pub accuracies: RunningMoments,
    /// Triples annotated, summed over shard-scoped memos.
    pub labeled: u64,
    /// Correct triples observed (estimator numerator, with multiplicity).
    pub correct: u64,
    /// Entities identified, summed over shard-scoped memos.
    pub entities: u64,
    /// Simulated human seconds, summed over shard-scoped memos in
    /// fixed-shape tree order.
    pub cost_seconds: f64,
}

impl ShardReplayReport {
    fn from_merged(
        design: ShardDesign,
        units: u64,
        shards: u64,
        shard_units: usize,
        merged: ShardPart,
    ) -> Self {
        let n = merged.accuracies.count() as usize;
        let estimate = if n == 0 {
            PointEstimate::uninformative()
        } else {
            let var = match design {
                ShardDesign::FullCluster => merged.accuracies.variance_of_mean(),
                ShardDesign::TwoStage { m } => floored_variance_of_mean(&merged.accuracies, m),
            };
            PointEstimate::new(merged.accuracies.mean(), var, n)
                .expect("plug-in variance is non-negative")
        };
        ShardReplayReport {
            design: design.name(),
            units,
            shards,
            shard_units,
            estimate,
            accuracies: merged.accuracies,
            labeled: merged.labeled,
            correct: merged.correct,
            entities: merged.entities,
            cost_seconds: merged.cost_seconds,
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: μ̂={:.4} ±{:.4} (95%) over {} visits in {} shards — {} labeled, {} entities, {:.1} s",
            self.design,
            self.estimate.mean,
            self.estimate.moe(0.05).unwrap_or(f64::NAN),
            self.units,
            self.shards,
            self.labeled,
            self.entities,
            self.cost_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::oracle::{true_accuracy, RemOracle};
    use kg_model::implicit::ImplicitKg;
    use std::sync::Arc;

    fn setup() -> (ImplicitKg, RemOracle, PopulationIndex) {
        let kg = ImplicitKg::new((0..800).map(|i| 1 + (i % 13)).collect()).unwrap();
        let oracle = RemOracle::new(0.87, 5);
        let idx = PopulationIndex::from_population(&kg).unwrap();
        (kg, oracle, idx)
    }

    fn report_bits(r: &ShardReplayReport) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            r.estimate.mean.to_bits(),
            r.estimate.var_of_mean.to_bits(),
            r.accuracies.sample_std().to_bits(),
            r.cost_seconds.to_bits(),
            r.labeled,
            r.correct,
            r.entities,
        )
    }

    #[test]
    fn bitwise_invariant_across_shard_worker_counts_and_engines() {
        let (_, oracle, idx) = setup();
        let store = Arc::new(idx.materialize_labels(&oracle));
        let pool = DenseArenaPool::new(store, CostModel::default());
        for design in [ShardDesign::FullCluster, ShardDesign::TwoStage { m: 4 }] {
            let reference = ShardedReplay::new().with_shard_workers(1).replay_hash(
                design,
                &idx,
                &oracle,
                CostModel::default(),
                1000,
                0xFEED,
            );
            assert_eq!(reference.units, 1000);
            assert_eq!(reference.shards, 4); // 1000 visits / 256 per shard
            assert_eq!(reference.accuracies.count(), 1000);
            for workers in [2, 3, 7, 16] {
                let replay = ShardedReplay::new().with_shard_workers(workers);
                let hash =
                    replay.replay_hash(design, &idx, &oracle, CostModel::default(), 1000, 0xFEED);
                let dense = replay.replay_dense(design, &idx, &pool, 1000, 0xFEED);
                assert_eq!(
                    report_bits(&reference),
                    report_bits(&hash),
                    "{design:?} hash at {workers} workers"
                );
                assert_eq!(
                    report_bits(&reference),
                    report_bits(&dense),
                    "{design:?} dense at {workers} workers"
                );
            }
        }
        // One arena per peak concurrent worker, not per shard.
        assert!(pool.arenas_built() <= 16, "built {}", pool.arenas_built());
    }

    #[test]
    fn estimates_are_statistically_sane() {
        let (kg, oracle, idx) = setup();
        let truth = true_accuracy(&kg, &oracle);
        let r = ShardedReplay::new().with_shard_workers(3).replay_hash(
            ShardDesign::FullCluster,
            &idx,
            &oracle,
            CostModel::default(),
            3000,
            99,
        );
        assert!(
            (r.estimate.mean - truth).abs() < 0.03,
            "{} vs truth {truth}",
            r.estimate.mean
        );
        assert!(r.estimate.moe(0.05).unwrap() < 0.05);
        assert!(r.cost_seconds > 0.0);
        assert!(r.correct > 0 && r.labeled > 0 && r.entities > 0);
        assert!(r.summary().contains("WCS/sharded"));
    }

    #[test]
    fn shard_units_partitions_the_walk() {
        let replay = ShardedReplay::new().with_shard_units(100);
        assert_eq!(replay.num_shards(1000), 10);
        assert_eq!(replay.num_shards(1001), 11);
        assert_eq!(replay.num_shards(0), 0);
        assert_eq!(replay.shard_units(), 100);
        // Different shard size ⇒ different stream (documented contract).
        let (_, oracle, idx) = setup();
        let a = ShardedReplay::new().with_shard_workers(1).replay_hash(
            ShardDesign::TwoStage { m: 3 },
            &idx,
            &oracle,
            CostModel::default(),
            600,
            7,
        );
        let b = replay.with_shard_workers(1).replay_hash(
            ShardDesign::TwoStage { m: 3 },
            &idx,
            &oracle,
            CostModel::default(),
            600,
            7,
        );
        assert_eq!(a.units, b.units);
        assert_ne!(a.estimate.mean.to_bits(), b.estimate.mean.to_bits());
    }

    #[test]
    fn zero_units_is_total_and_uninformative() {
        let (_, oracle, idx) = setup();
        let r = ShardedReplay::new().with_shard_workers(4).replay_hash(
            ShardDesign::FullCluster,
            &idx,
            &oracle,
            CostModel::default(),
            0,
            1,
        );
        assert_eq!(r.units, 0);
        assert_eq!(r.shards, 0);
        assert_eq!(r.estimate.units, 0);
        assert_eq!(r.labeled, 0);
        assert!(r.estimate.moe(0.05).unwrap() > 0.5);
    }

    #[test]
    fn design_mapping_covers_only_flat_walks() {
        assert_eq!(
            ShardDesign::from_design(&Design::Wcs),
            Some(ShardDesign::FullCluster)
        );
        assert_eq!(
            ShardDesign::from_design(&Design::Twcs { m: 5 }),
            Some(ShardDesign::TwoStage { m: 5 })
        );
        assert_eq!(ShardDesign::from_design(&Design::Srs), None);
        assert_eq!(ShardDesign::from_design(&Design::Rcs), None);
        assert_eq!(ShardDesign::from_design(&Design::TsRcs { m: 2 }), None);
    }

    #[test]
    fn env_var_caps_default_shard_workers() {
        // Only this test touches KG_EVAL_SHARDS; results are invariant to
        // the resolved count anyway.
        std::env::set_var(ENV_SHARDS, "3");
        assert_eq!(ShardedReplay::new().shard_workers(), 3);
        std::env::set_var(ENV_SHARDS, "zero?");
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(ShardedReplay::new().shard_workers(), fallback);
        std::env::set_var(ENV_SHARDS, "5");
        assert_eq!(
            ShardedReplay::new().with_shard_workers(2).shard_workers(),
            2
        );
        std::env::remove_var(ENV_SHARDS);
        assert_eq!(ShardedReplay::new().shard_workers(), fallback);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shard_workers_rejected() {
        let _ = ShardedReplay::new().with_shard_workers(0);
    }
}

//! Per-predicate accuracy evaluation — the paper's stated future work
//! (§9: "extending the proposed solution to enable efficient evaluation on
//! different granularity, such as accuracy per predicate or per entity
//! type").
//!
//! Each predicate's triples form their own sub-population, still clustered
//! by subject so the annotation cost structure is preserved; TWCS runs per
//! predicate against the MoE target. One shared annotator serves every
//! group, so an entity identified while auditing `wasBornIn` is free when
//! `birthDate` later samples the same subject — cross-group identification
//! reuse that a naive per-predicate re-evaluation forfeits.

use crate::config::EvalConfig;
use crate::executor::TrialExecutor;
use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::oracle::LabelOracle;
use kg_model::graph::KnowledgeGraph;
use kg_model::triple::{PredicateId, TripleRef};
use kg_stats::alias::AliasTable;
use kg_stats::srswor::sample_without_replacement_into;
use kg_stats::{PointEstimate, RunningMoments};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// One predicate's sub-population: per-subject groups of triple offsets
/// (offsets index the *original* graph, so oracles and annotators see
/// consistent `TripleRef`s).
struct PredicateGroup {
    predicate: PredicateId,
    /// `(global cluster id, offsets of this predicate's triples in it)`.
    clusters: Vec<(u32, Vec<u32>)>,
    total_triples: u64,
}

/// Accuracy estimate for one predicate.
#[derive(Debug, Clone)]
pub struct PredicateReport {
    /// The predicate (resolve its name via the graph's interner).
    pub predicate: PredicateId,
    /// Triples carrying this predicate.
    pub triples: u64,
    /// Unbiased accuracy estimate for the predicate's triples.
    pub estimate: PointEstimate,
    /// Achieved margin of error.
    pub moe: f64,
    /// Whether the MoE target was met (small predicates may be exhausted
    /// first — then the estimate is a census and exact).
    pub converged: bool,
}

/// Evaluate per-predicate accuracies over a materialized KG with a shared
/// annotator. Predicates with fewer than `min_triples` triples are censused
/// outright (sampling machinery would oversample them anyway).
pub fn evaluate_per_predicate(
    graph: &KnowledgeGraph,
    oracle: &dyn LabelOracle,
    config: &EvalConfig,
    m: usize,
    min_triples: u64,
    rng: &mut dyn RngCore,
) -> (Vec<PredicateReport>, SimulatedAnnotatorStats) {
    assert!(m >= 1, "second-stage size m must be at least 1");
    // Build per-predicate subject groups.
    let mut groups: HashMap<PredicateId, HashMap<u32, Vec<u32>>> = HashMap::new();
    for (r, t) in graph.iter_refs() {
        groups
            .entry(t.predicate)
            .or_default()
            .entry(r.cluster)
            .or_default()
            .push(r.offset);
    }
    let mut predicate_groups: Vec<PredicateGroup> = groups
        .into_iter()
        .map(|(predicate, by_cluster)| {
            let mut clusters: Vec<(u32, Vec<u32>)> = by_cluster.into_iter().collect();
            clusters.sort_unstable_by_key(|(c, _)| *c);
            let total_triples = clusters.iter().map(|(_, o)| o.len() as u64).sum();
            PredicateGroup {
                predicate,
                clusters,
                total_triples,
            }
        })
        .collect();
    predicate_groups.sort_unstable_by_key(|g| g.predicate);

    let mut annotator = SimulatedAnnotator::new(oracle, kg_annotate::cost::CostModel::default());
    let mut reports = Vec::with_capacity(predicate_groups.len());
    for group in &predicate_groups {
        let report = if group.total_triples < min_triples {
            census(group, &mut annotator)
        } else {
            twcs_group(group, config, m, rng, &mut annotator)
        };
        reports.push(report);
    }
    let stats = SimulatedAnnotatorStats {
        seconds: annotator.seconds(),
        triples_annotated: annotator.triples_annotated(),
        entities_identified: annotator.entities_identified(),
    };
    (reports, stats)
}

/// Trial-aggregated accuracy for one predicate, from
/// [`evaluate_per_predicate_trials`].
#[derive(Debug, Clone)]
pub struct PredicateTrialStats {
    /// The predicate (resolve its name via the graph's interner).
    pub predicate: PredicateId,
    /// Triples carrying this predicate (trial-invariant).
    pub triples: u64,
    /// Accuracy estimates across trials.
    pub estimate: RunningMoments,
    /// Achieved MoE across trials.
    pub moe: RunningMoments,
    /// Convergence indicator across trials (1.0 = converged).
    pub converged: RunningMoments,
}

/// Everything [`evaluate_per_predicate_trials`] aggregates.
#[derive(Debug, Clone)]
pub struct GranularTrialStats {
    /// Per-predicate aggregates, sorted by predicate id (the same
    /// deterministic order [`evaluate_per_predicate`] reports in).
    pub predicates: Vec<PredicateTrialStats>,
    /// Total human seconds per trial.
    pub cost_seconds: RunningMoments,
    /// Distinct entities identified per trial (shared across groups).
    pub entities_identified: RunningMoments,
    /// Distinct triples annotated per trial.
    pub triples_annotated: RunningMoments,
}

/// Repeated seeded granular evaluations on the [`TrialExecutor`]: each
/// trial runs [`evaluate_per_predicate`] with the counter-based seed
/// stream, and per-predicate estimates are aggregated with the executor's
/// fixed-shape reduction — bitwise identical at any worker count.
///
/// The per-predicate report order is deterministic (sorted by predicate
/// id), so metric positions line up across trials by construction.
// Mirrors `evaluate_per_predicate`'s knobs plus the executor triple.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_per_predicate_trials(
    graph: &KnowledgeGraph,
    oracle: &dyn LabelOracle,
    config: &EvalConfig,
    m: usize,
    min_triples: u64,
    exec: &TrialExecutor,
    trials: u64,
    base_seed: u64,
) -> GranularTrialStats {
    // Deterministic predicate census (same order the evaluation reports).
    let mut counts: BTreeMap<PredicateId, u64> = BTreeMap::new();
    for (_, t) in graph.iter_refs() {
        *counts.entry(t.predicate).or_default() += 1;
    }
    let census: Vec<(PredicateId, u64)> = counts.into_iter().collect();
    let p = census.len();
    let stats = exec.run(trials, base_seed, 3 * p + 3, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let (reports, effort) =
            evaluate_per_predicate(graph, oracle, config, m, min_triples, &mut rng);
        assert_eq!(reports.len(), p, "predicate set must be trial-invariant");
        let mut v = Vec::with_capacity(3 * p + 3);
        for (r, (id, _)) in reports.iter().zip(&census) {
            assert_eq!(r.predicate, *id, "predicate order must be deterministic");
            v.push(r.estimate.mean);
            v.push(r.moe);
            v.push(r.converged as u64 as f64);
        }
        v.push(effort.seconds);
        v.push(effort.entities_identified as f64);
        v.push(effort.triples_annotated as f64);
        v
    });
    let predicates = census
        .iter()
        .enumerate()
        .map(|(i, &(predicate, triples))| PredicateTrialStats {
            predicate,
            triples,
            estimate: stats[3 * i],
            moe: stats[3 * i + 1],
            converged: stats[3 * i + 2],
        })
        .collect();
    GranularTrialStats {
        predicates,
        cost_seconds: stats[3 * p],
        entities_identified: stats[3 * p + 1],
        triples_annotated: stats[3 * p + 2],
    }
}

/// Aggregate annotation effort of a granular evaluation.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnotatorStats {
    /// Total human seconds.
    pub seconds: f64,
    /// Distinct triples annotated.
    pub triples_annotated: usize,
    /// Distinct entities identified (shared across predicate groups).
    pub entities_identified: usize,
}

fn census(group: &PredicateGroup, annotator: &mut SimulatedAnnotator<'_>) -> PredicateReport {
    let refs: Vec<TripleRef> = group
        .clusters
        .iter()
        .flat_map(|(c, offsets)| offsets.iter().map(move |&o| TripleRef::new(*c, o)))
        .collect();
    let labels = annotator.annotate(&refs);
    let correct = labels.iter().filter(|&&b| b).count();
    let mean = correct as f64 / labels.len().max(1) as f64;
    let estimate = PointEstimate::new(mean, 0.0, labels.len()).expect("zero variance is valid");
    PredicateReport {
        predicate: group.predicate,
        triples: group.total_triples,
        estimate,
        moe: 0.0,
        converged: true,
    }
}

fn twcs_group(
    group: &PredicateGroup,
    config: &EvalConfig,
    m: usize,
    rng: &mut dyn RngCore,
    annotator: &mut SimulatedAnnotator<'_>,
) -> PredicateReport {
    // PPS over the group's per-subject triple counts.
    let sizes: Vec<u32> = group.clusters.iter().map(|(_, o)| o.len() as u32).collect();
    let alias = AliasTable::from_sizes(&sizes).expect("non-empty predicate group");
    let mut accs = RunningMoments::new();
    let mut converged = false;
    // Reusable per-draw buffers: sampled indices into the group's offset
    // list, and the resolved in-cluster offsets.
    let mut chosen: Vec<usize> = Vec::with_capacity(m);
    let mut picks: Vec<usize> = Vec::with_capacity(m);
    while (accs.count() as usize) < config.max_units {
        for _ in 0..config.batch_size {
            let k = alias.sample(rng);
            let (cluster, offsets) = &group.clusters[k];
            let take = offsets.len().min(m);
            sample_without_replacement_into(rng, offsets.len(), take, &mut chosen);
            picks.clear();
            picks.extend(chosen.iter().map(|&i| offsets[i] as usize));
            let tau = annotator.annotate_offsets(*cluster, &picks);
            accs.push(tau as f64 / take as f64);
        }
        let n = accs.count() as usize;
        let var = kg_sampling::twcs::floored_variance_of_mean(&accs, m);
        let est = PointEstimate::new(accs.mean(), var, n).expect("valid variance");
        if n >= config.min_units && est.moe(config.alpha).expect("valid alpha") <= config.target_moe
        {
            converged = true;
            break;
        }
    }
    let var = kg_sampling::twcs::floored_variance_of_mean(&accs, m);
    let estimate =
        PointEstimate::new(accs.mean(), var, accs.count() as usize).expect("valid variance");
    PredicateReport {
        predicate: group.predicate,
        triples: group.total_triples,
        estimate,
        moe: estimate.moe(config.alpha).expect("valid alpha"),
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::oracle::GoldLabels;
    use kg_model::builder::KgBuilder;
    use kg_model::implicit::ClusterPopulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Graph with two predicates: `good` (always correct) and `bad`
    /// (always wrong), interleaved across many subjects.
    fn two_predicate_graph() -> (KnowledgeGraph, GoldLabels) {
        let mut b = KgBuilder::new();
        for i in 0..300 {
            let s = format!("e{i}");
            b.add_literal_triple(&s, "good", &format!("g{i}"));
            b.add_literal_triple(&s, "bad", &format!("b{i}"));
            if i % 3 == 0 {
                b.add_literal_triple(&s, "good", &format!("g2_{i}"));
            }
        }
        let g = b.build();
        // Labels: predicate "good" → true, "bad" → false.
        let good = g.predicates().get("good").unwrap();
        let labels: Vec<Vec<bool>> = g
            .clusters()
            .iter()
            .map(|c| c.triples.iter().map(|t| t.predicate.0 == good).collect())
            .collect();
        (g, GoldLabels::new(labels))
    }

    #[test]
    fn per_predicate_estimates_separate_good_from_bad() {
        let (g, gold) = two_predicate_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let config = EvalConfig::default();
        let (reports, stats) = evaluate_per_predicate(&g, &gold, &config, 3, 30, &mut rng);
        assert_eq!(reports.len(), 2);
        let by_name: HashMap<&str, &PredicateReport> = reports
            .iter()
            .map(|r| (g.predicates().resolve(r.predicate.0).unwrap(), r))
            .collect();
        let good = by_name["good"];
        let bad = by_name["bad"];
        assert!(good.estimate.mean > 0.95, "good {}", good.estimate.mean);
        assert!(bad.estimate.mean < 0.05, "bad {}", bad.estimate.mean);
        assert!(good.converged && bad.converged);
        assert!(good.moe <= config.target_moe);
        assert!(stats.seconds > 0.0);
        assert_eq!(good.triples, 400);
        assert_eq!(bad.triples, 300);
    }

    #[test]
    fn small_predicates_are_censused_exactly() {
        let mut b = KgBuilder::new();
        for i in 0..5 {
            b.add_literal_triple(&format!("e{i}"), "rare", "x");
        }
        for i in 0..200 {
            b.add_literal_triple(&format!("e{i}"), "common", "y");
        }
        let g = b.build();
        // rare: 3 of 5 correct; common: all correct.
        let rare = g.predicates().get("rare").unwrap();
        let mut count = 0;
        let labels: Vec<Vec<bool>> = g
            .clusters()
            .iter()
            .map(|c| {
                c.triples
                    .iter()
                    .map(|t| {
                        if t.predicate.0 == rare {
                            count += 1;
                            count <= 3
                        } else {
                            true
                        }
                    })
                    .collect()
            })
            .collect();
        let gold = GoldLabels::new(labels);
        let mut rng = StdRng::seed_from_u64(2);
        let (reports, _) =
            evaluate_per_predicate(&g, &gold, &EvalConfig::default(), 5, 30, &mut rng);
        let rare_report = reports
            .iter()
            .find(|r| g.predicates().resolve(r.predicate.0) == Some("rare"))
            .unwrap();
        assert_eq!(rare_report.moe, 0.0);
        assert!((rare_report.estimate.mean - 0.6).abs() < 1e-12);
        assert!(rare_report.converged);
    }

    #[test]
    fn trial_fanout_is_worker_invariant_and_tracks_single_runs() {
        use crate::executor::TrialExecutor;

        let (g, gold) = two_predicate_graph();
        let config = EvalConfig::default();
        let run = |workers| {
            evaluate_per_predicate_trials(
                &g,
                &gold,
                &config,
                3,
                30,
                &TrialExecutor::new().with_workers(workers),
                8,
                41,
            )
        };
        let a = run(1);
        let b = run(6);
        assert_eq!(a.predicates.len(), 2);
        for (pa, pb) in a.predicates.iter().zip(&b.predicates) {
            assert_eq!(pa.predicate, pb.predicate);
            assert_eq!(pa.triples, pb.triples);
            assert_eq!(pa.estimate.mean().to_bits(), pb.estimate.mean().to_bits());
            assert_eq!(
                pa.estimate.sample_std().to_bits(),
                pb.estimate.sample_std().to_bits()
            );
            assert_eq!(pa.moe.mean().to_bits(), pb.moe.mean().to_bits());
            assert_eq!(pa.converged.mean(), 1.0);
        }
        assert_eq!(
            a.cost_seconds.mean().to_bits(),
            b.cost_seconds.mean().to_bits()
        );
        // Good and bad predicates still separate after trial averaging.
        let by_name: HashMap<&str, &PredicateTrialStats> = a
            .predicates
            .iter()
            .map(|r| (g.predicates().resolve(r.predicate.0).unwrap(), r))
            .collect();
        assert!(by_name["good"].estimate.mean() > 0.95);
        assert!(by_name["bad"].estimate.mean() < 0.05);
        assert_eq!(by_name["good"].triples, 400);
        // And each trial matches a by-hand replay of the same seed.
        let mut rng = StdRng::seed_from_u64(crate::executor::trial_seed(41, 0));
        let (reports, _) = evaluate_per_predicate(&g, &gold, &config, 3, 30, &mut rng);
        let good = reports
            .iter()
            .find(|r| g.predicates().resolve(r.predicate.0) == Some("good"))
            .unwrap();
        assert!((by_name["good"].estimate.mean() - good.estimate.mean).abs() < 0.05);
    }

    #[test]
    fn shared_annotator_reuses_identification_across_predicates() {
        let (g, gold) = two_predicate_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let (_, stats) = evaluate_per_predicate(&g, &gold, &EvalConfig::default(), 3, 10, &mut rng);
        // Entities identified must be at most the number of clusters, and
        // strictly fewer than triples annotated (sharing across groups).
        assert!(stats.entities_identified <= g.num_clusters());
        assert!(stats.entities_identified < stats.triples_annotated);
    }
}

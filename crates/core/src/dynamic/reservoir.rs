//! Reservoir Incremental Evaluation (§6.1, Algorithm 1).
//!
//! A fixed-size weighted reservoir of entity clusters is maintained as the
//! KG grows: every insertion group `Δe` is offered with key
//! `Rand(0,1)^{1/|Δe|}` and replaces the reservoir's minimum-key member when
//! it wins. Only the (few) clusters that enter the reservoir need fresh
//! annotation; evicted clusters' annotations are retired. When the
//! post-update estimate misses the MoE target, extra weighted cluster draws
//! from the *current* KG state top the sample up, exactly as the paper
//! prescribes ("we again run Static Evaluation on G + Δ … iteratively
//! until MoE is no more than ε").
//!
//! All mutable state lives in [`ReservoirState`] (see
//! [`crate::dynamic::state`]): the evaluator is thin logic over it, so a
//! session can extract, checkpoint, and restore the state mid-stream with
//! byte-identical estimates thereafter.

use crate::config::EvalConfig;
use crate::dynamic::state::{MonitorState, ReservoirState};
use crate::dynamic::IncrementalEvaluator;
use kg_annotate::annotator::Annotator;
use kg_model::implicit::ImplicitKg;
use kg_model::retract::Retraction;
use kg_model::update::UpdateBatch;
use kg_sampling::twcs::annotate_cluster_subset;
use kg_stats::pps::GrowablePps;
use kg_stats::reservoir::{OfferOutcome, WeightedReservoirExpJ};
use kg_stats::{PointEstimate, RunningMoments};
use rand::RngCore;
use std::collections::{BTreeMap, BTreeSet};

/// How the evaluator feeds cluster streams into its A-ExpJ reservoir.
/// Both modes are **bitwise identical** in every observable — RNG draws,
/// reservoir members, eviction order, estimates; the only difference is
/// the shape of the bookkeeping loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OfferMode {
    /// One `offer` call per cluster — the reference formulation, kept for
    /// identity regression (CI byte-diffs a replay under both modes).
    PerItem,
    /// `offer_batch` over the batch's cached weight prefix, with the PPS
    /// frame adopting that prefix as an O(1) shared segment: per-batch
    /// skeleton work is O(a·log|Δ|) for `a` reservoir acceptances — no
    /// per-cluster loop at all.
    #[default]
    Batched,
}

/// Reservoir-based incremental evaluator (RS in §7.3).
///
/// Engine-agnostic: `apply_update` announces each batch to the annotator
/// via [`Annotator::extend_population`] before touching its delta-minted
/// ids, so the dense arena grows in lock-step and either engine drives the
/// evaluator identically. Per-batch skeleton work is **sublinear in |Δ|**
/// (default [`OfferMode::Batched`]): the A-ExpJ reservoir binary-searches
/// each jump's landing index over the batch's cached weight prefix instead
/// of subtract-and-compare per cluster, and the [`GrowablePps`] top-up
/// frame *adopts* the same prefix as an `Arc`-shared segment in O(1) — no
/// weight is copied, nothing is rebuilt over the whole evolved KG, and the
/// per-cluster loop disappears from the hot path entirely.
pub struct ReservoirEvaluator {
    m: usize,
    config: EvalConfig,
    offer_mode: OfferMode,
    /// Every mutable field — extractable for checkpoint/restore.
    pub(crate) state: ReservoirState,
    /// Reusable second-stage offset buffer (pure scratch — not state).
    scratch: Vec<usize>,
}

impl ReservoirEvaluator {
    /// Initialize over the base KG: stream all base clusters through the
    /// reservoir, annotate its members, and top up to the MoE target.
    ///
    /// `capacity` is the reservoir size `|R|` (the paper sizes it like a
    /// static TWCS first-stage sample).
    pub fn evaluate_base(
        base: &ImplicitKg,
        capacity: usize,
        m: usize,
        config: EvalConfig,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> Self {
        Self::evaluate_base_with_mode(
            base,
            capacity,
            m,
            config,
            OfferMode::default(),
            annotator,
            rng,
        )
    }

    /// [`Self::evaluate_base`] with an explicit [`OfferMode`] — the
    /// per-item mode exists so CI (and the skeleton benchmark) can
    /// byte-diff whole replays against the batched default.
    pub fn evaluate_base_with_mode(
        base: &ImplicitKg,
        capacity: usize,
        m: usize,
        config: EvalConfig,
        offer_mode: OfferMode,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> Self {
        let mut reservoir = WeightedReservoirExpJ::new(capacity);
        let pps = GrowablePps::from_sizes(base.sizes()).expect("cluster sizes are positive");
        match offer_mode {
            OfferMode::Batched => {
                // The PPS frame's prefix sums double as the base stream's
                // cumulative weights: one binary search per acceptance
                // replaces N subtract-and-compare offers.
                reservoir.offer_batch(rng, pps.prefix(), |c| c as u32, |_, _, _| {});
            }
            OfferMode::PerItem => {
                for (c, &s) in base.sizes().iter().enumerate() {
                    reservoir.offer(rng, c as u32, s as f64);
                }
            }
        }
        let mut this = ReservoirEvaluator {
            m,
            config,
            offer_mode,
            state: ReservoirState {
                reservoir,
                member_accuracy: BTreeMap::new(),
                extras: Vec::new(),
                pps,
                max_gross_weight: base.sizes().iter().copied().max().unwrap_or(0).into(),
            },
            scratch: Vec::with_capacity(m),
        };
        this.annotate_new_members(annotator, rng);
        this.top_up(annotator, rng);
        this
    }

    /// Rebuild an evaluator around restored [`ReservoirState`] — the
    /// checkpoint/restore path. `m`, `config`, and `offer_mode` are spec,
    /// not state: the session record carries them alongside the state
    /// bytes.
    pub fn from_state(
        state: ReservoirState,
        m: usize,
        config: EvalConfig,
        offer_mode: OfferMode,
    ) -> Self {
        ReservoirEvaluator {
            m,
            config,
            offer_mode,
            state,
            scratch: Vec::with_capacity(m),
        }
    }

    /// Borrow the extractable state.
    pub fn state(&self) -> &ReservoirState {
        &self.state
    }

    /// Extract the state, consuming the evaluator.
    pub fn into_state(self) -> MonitorState {
        MonitorState::Reservoir(self.state)
    }

    /// The configured offer mode.
    pub fn offer_mode(&self) -> OfferMode {
        self.offer_mode
    }

    /// Shift every *currently annotated* accuracy by `bias` (clamped to
    /// `[0, 1]`), emulating an unlucky initial sample whose estimate is off
    /// by `bias` — the Fig. 9-2/9-3 fault-tolerance scenario. Future
    /// annotations (update insertions, top-ups) are unaffected, so RS
    /// recovers as biased members are evicted and diluted, while the same
    /// bias frozen into a stratified evaluator's base estimate persists.
    pub fn inject_initial_bias(&mut self, bias: f64) {
        for acc in self.state.member_accuracy.values_mut() {
            *acc = (*acc + bias).clamp(0.0, 1.0);
        }
        for acc in &mut self.state.extras {
            *acc = (*acc + bias).clamp(0.0, 1.0);
        }
    }

    /// Number of reservoir replacement events so far (Proposition 3).
    pub fn replacements(&self) -> u64 {
        self.state.reservoir.replacements()
    }

    /// Reservoir capacity `|R|`.
    pub fn capacity(&self) -> usize {
        self.state.reservoir.capacity()
    }

    /// Current **live** triples in the evolved KG skeleton — insertions
    /// minus retractions.
    pub fn total_triples(&self) -> u64 {
        self.state.pps.total()
    }

    fn annotate_new_members(&mut self, annotator: &mut dyn Annotator, rng: &mut dyn RngCore) {
        let members: Vec<u32> = self.state.reservoir.iter().map(|k| k.item).collect();
        for c in members {
            if !self.state.member_accuracy.contains_key(&c) {
                let acc = annotate_cluster_subset(
                    c,
                    self.state.pps.weight(c as usize) as usize,
                    self.m,
                    rng,
                    annotator,
                    &mut self.scratch,
                );
                self.state.member_accuracy.insert(c, acc);
            }
        }
    }

    fn moments(&self) -> RunningMoments {
        self.state
            .member_accuracy
            .values()
            .copied()
            .chain(self.state.extras.iter().copied())
            .collect()
    }

    /// Draw additional PPS cluster samples from the current KG state until
    /// the MoE target and the CLT minimum are met.
    fn top_up(&mut self, annotator: &mut dyn Annotator, rng: &mut dyn RngCore) {
        loop {
            let est = self.estimate();
            let n = self.state.member_accuracy.len() + self.state.extras.len();
            let moe = est.moe(self.config.alpha).expect("valid alpha");
            if n >= self.config.min_units && moe <= self.config.target_moe {
                break;
            }
            if n >= self.config.max_units {
                break;
            }
            assert!(!self.state.pps.is_empty(), "non-empty evolved KG");
            for _ in 0..self.config.batch_size {
                let c = self.state.pps.sample(rng) as u32;
                let acc = annotate_cluster_subset(
                    c,
                    self.state.pps.weight(c as usize) as usize,
                    self.m,
                    rng,
                    annotator,
                    &mut self.scratch,
                );
                self.state.extras.push(acc);
            }
        }
    }
}

impl IncrementalEvaluator for ReservoirEvaluator {
    fn apply_update(
        &mut self,
        delta: &UpdateBatch,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> PointEstimate {
        // Announce the batch before annotating any of its fresh ids, so a
        // materialized engine can grow its label state (no-op for the hash
        // engine, and for replays over a pre-evolved store).
        annotator.extend_population(self.state.pps.len() as u32, delta);
        // Stale after growth: extras were drawn from the previous frame.
        self.state.extras.clear();
        let batch_max = delta.delta_sizes().iter().copied().max().unwrap_or(0);
        self.state.max_gross_weight = self.state.max_gross_weight.max(batch_max.into());
        match self.offer_mode {
            OfferMode::Batched => {
                // O(1) skeleton growth: the batch's cached weight prefix is
                // adopted as a shared PPS segment (no weight copied), then
                // one binary search per reservoir acceptance replaces the
                // offer call per Δe cluster. Annotation draws interleave
                // with the offer stream through the callback exactly where
                // the per-item loop puts them.
                let first = self.state.pps.len() as u32;
                self.state
                    .pps
                    .extend_shared(delta.weight_prefix_shared())
                    .expect("Δe groups are non-empty");
                let m = self.m;
                let ReservoirState {
                    reservoir,
                    member_accuracy,
                    ..
                } = &mut self.state;
                let scratch = &mut self.scratch;
                let delta_sizes = delta.delta_sizes();
                reservoir.offer_batch(
                    rng,
                    delta.weight_prefix(),
                    |i| first + i as u32,
                    |rng, i, outcome| {
                        if let OfferOutcome::Replaced(evicted) = &outcome {
                            member_accuracy.remove(&evicted.item);
                        }
                        let acc = annotate_cluster_subset(
                            first + i as u32,
                            delta_sizes[i] as usize,
                            m,
                            rng,
                            &mut *annotator,
                            scratch,
                        );
                        member_accuracy.insert(first + i as u32, acc);
                    },
                );
            }
            OfferMode::PerItem => {
                for &dsize in delta.delta_sizes() {
                    let id = self.state.pps.len() as u32;
                    self.state.pps.push(dsize).expect("Δe groups are non-empty");
                    match self.state.reservoir.offer(rng, id, dsize as f64) {
                        OfferOutcome::Inserted => {
                            let acc = annotate_cluster_subset(
                                id,
                                dsize as usize,
                                self.m,
                                rng,
                                annotator,
                                &mut self.scratch,
                            );
                            self.state.member_accuracy.insert(id, acc);
                        }
                        OfferOutcome::Replaced(evicted) => {
                            self.state.member_accuracy.remove(&evicted.item);
                            let acc = annotate_cluster_subset(
                                id,
                                dsize as usize,
                                self.m,
                                rng,
                                annotator,
                                &mut self.scratch,
                            );
                            self.state.member_accuracy.insert(id, acc);
                        }
                        OfferOutcome::Rejected => {}
                    }
                }
            }
        }
        self.top_up(annotator, rng);
        self.estimate()
    }

    fn apply_retraction(
        &mut self,
        retraction: &Retraction,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> PointEstimate {
        // Tombstone the annotator's view first: every re-annotation below
        // must address the post-retraction live coordinate space.
        annotator.retract(retraction);
        // Decrement the skeleton's weights — the PPS overlay keeps the
        // Arc-shared segments intact and compacts only when dead weight
        // crosses its threshold. Entries are sorted by cluster, so this
        // walk (and everything derived from it) is deterministic.
        let mut fully_dead: BTreeSet<u32> = BTreeSet::new();
        for (cluster, offsets) in retraction.entries() {
            self.state
                .pps
                .decrement(*cluster as usize, offsets.len() as u64)
                .expect("retraction addresses live triples of known clusters");
            if self.state.pps.weight(*cluster as usize) == 0 {
                fully_dead.insert(*cluster);
            }
        }
        // Evict fully-dead reservoir members: their cluster no longer
        // exists in the live KG, so their annotations are retired (the
        // cost stays sunk) and the reservoir re-enters fill mode if it
        // dropped below capacity.
        if !fully_dead.is_empty() {
            self.state.reservoir.retain(|c| !fully_dead.contains(c));
            for c in &fully_dead {
                self.state.member_accuracy.remove(c);
            }
        }
        // Partially-dead members keep their seat (their survival keys are
        // still valid for the reduced weight, conditional on having won)
        // but their second-stage accuracy was sampled from a frame that
        // included now-dead triples — re-annotate over the live remainder.
        for (cluster, _) in retraction.entries() {
            if fully_dead.contains(cluster) || !self.state.member_accuracy.contains_key(cluster) {
                continue;
            }
            let acc = annotate_cluster_subset(
                *cluster,
                self.state.pps.weight(*cluster as usize) as usize,
                self.m,
                rng,
                annotator,
                &mut self.scratch,
            );
            self.state.member_accuracy.insert(*cluster, acc);
        }
        // Extras were drawn from the pre-retraction frame — stale now.
        self.state.extras.clear();
        if self.state.pps.total() > 0 {
            self.top_up(annotator, rng);
        }
        self.estimate()
    }

    fn estimate(&self) -> PointEstimate {
        let moments = self.moments();
        let n = moments.count() as usize;
        if n == 0 {
            return PointEstimate::uninformative();
        }
        PointEstimate::new(
            moments.mean(),
            kg_sampling::twcs::floored_variance_of_mean(&moments, self.m),
            n,
        )
        .expect("plug-in variance is non-negative")
    }

    fn saturated(&self) -> bool {
        self.state.saturated()
    }

    fn name(&self) -> &'static str {
        "RS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::{true_accuracy, RemOracle};
    use kg_model::implicit::ClusterPopulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_kg() -> ImplicitKg {
        ImplicitKg::new((0..2000).map(|i| 1 + (i % 10)).collect()).unwrap()
    }

    #[test]
    fn base_evaluation_meets_moe() {
        let base = base_kg();
        let oracle = RemOracle::new(0.9, 1);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(1);
        let eval = ReservoirEvaluator::evaluate_base(
            &base,
            60,
            5,
            EvalConfig::default(),
            &mut annotator,
            &mut rng,
        );
        let est = eval.estimate();
        assert!(est.moe(0.05).unwrap() <= 0.05);
        let truth = true_accuracy(&base, &oracle);
        assert!((est.mean - truth).abs() < 0.08);
        assert_eq!(eval.capacity(), 60);
    }

    #[test]
    fn update_annotation_is_incremental() {
        let base = base_kg();
        let oracle = RemOracle::new(0.9, 2);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut eval = ReservoirEvaluator::evaluate_base(
            &base,
            60,
            5,
            EvalConfig::default(),
            &mut annotator,
            &mut rng,
        );
        let cost_before = annotator.seconds();
        // Small update (~5% of base): incremental cost should be far below
        // the base evaluation cost.
        let delta = UpdateBatch::from_sizes(vec![5; 100]).unwrap();
        let est = eval.apply_update(&delta, &mut annotator, &mut rng);
        let cost_delta = annotator.seconds() - cost_before;
        assert!(est.moe(0.05).unwrap() <= 0.05);
        assert!(
            cost_delta < cost_before * 0.5,
            "incremental {cost_delta} vs base {cost_before}"
        );
        assert_eq!(eval.total_triples(), base.total_triples() + 500);
    }

    #[test]
    fn replacement_count_bounded_by_proposition_3() {
        let base = base_kg();
        let oracle = RemOracle::new(0.9, 3);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut eval = ReservoirEvaluator::evaluate_base(
            &base,
            50,
            5,
            EvalConfig::default(),
            &mut annotator,
            &mut rng,
        );
        let after_base = eval.replacements();
        // Double the cluster count: E[new replacements] ≈ |R|·ln 2 ≈ 35.
        let delta = UpdateBatch::from_sizes(vec![5; 2000]).unwrap();
        eval.apply_update(&delta, &mut annotator, &mut rng);
        let growth = eval.replacements() - after_base;
        // Generous bound: 3× the expectation.
        assert!(
            growth < 3 * 50,
            "replacements grew by {growth}, expected ≈ 50·ln2 ≈ 35"
        );
    }

    #[test]
    fn retraction_evicts_dead_members_and_shrinks_the_frame() {
        use kg_model::retract::Retraction;

        let base = base_kg();
        let oracle = RemOracle::new(0.9, 11);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut eval = ReservoirEvaluator::evaluate_base(
            &base,
            60,
            5,
            EvalConfig::default(),
            &mut annotator,
            &mut rng,
        );
        let live_before = eval.total_triples();
        // Fully retract one reservoir member and partially retract another.
        let members: Vec<u32> = {
            let mut m: Vec<u32> = eval.state.member_accuracy.keys().copied().collect();
            m.sort_unstable();
            m
        };
        let full = members[0];
        let partial = *members
            .iter()
            .find(|&&c| eval.state.pps.weight(c as usize) >= 2 && c != full)
            .expect("some member has ≥ 2 triples");
        let full_size = eval.state.pps.weight(full as usize) as u32;
        let r =
            Retraction::new(vec![(full, (0..full_size).collect()), (partial, vec![0])]).unwrap();
        let est = eval.apply_retraction(&r, &mut annotator, &mut rng);
        assert_eq!(eval.total_triples(), live_before - u64::from(full_size) - 1);
        // The fully-dead cluster left the reservoir and the sample; the
        // partially-dead one kept its seat with a refreshed accuracy.
        assert!(!eval.state.member_accuracy.contains_key(&full));
        assert!(eval.state.member_accuracy.contains_key(&partial));
        assert_eq!(eval.state.pps.weight(full as usize), 0);
        assert!(est.moe(0.05).unwrap() <= 0.05);
        // Later updates still work over the decremented frame.
        let delta = UpdateBatch::from_sizes(vec![5; 50]).unwrap();
        let est = eval.apply_update(&delta, &mut annotator, &mut rng);
        assert!(est.moe(0.05).unwrap() <= 0.05);
    }

    #[test]
    fn estimate_tracks_changed_accuracy() {
        // Base at 90%, then a large bad update (accuracy 0%) drags overall
        // accuracy down; RS should follow.
        use kg_annotate::piecewise::PiecewiseOracle;
        let base = ImplicitKg::new(vec![4; 1000]).unwrap(); // 4000 triples
        let mut oracle = PiecewiseOracle::new(Box::new(RemOracle::new(0.9, 4)));
        oracle.push_segment(1000, Box::new(RemOracle::new(0.0, 5)));
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(4);
        let mut eval = ReservoirEvaluator::evaluate_base(
            &base,
            60,
            5,
            EvalConfig::default(),
            &mut annotator,
            &mut rng,
        );
        // Update: 4000 more triples, all wrong → overall ≈ 45%.
        let delta = UpdateBatch::from_sizes(vec![4; 1000]).unwrap();
        let est = eval.apply_update(&delta, &mut annotator, &mut rng);
        assert!(
            (est.mean - 0.45).abs() < 0.08,
            "estimate {} should approach 0.45",
            est.mean
        );
    }

    #[test]
    fn saturation_flag_fires_when_a_cluster_overflows_its_inclusion_probability() {
        // The PR 8 drift-family repro in miniature: a modest base whose
        // largest cluster is far below K·w/W = 1, then one giant update
        // cluster (the movie-profile cap) that saturates it.
        let base = ImplicitKg::new((0..600).map(|i| 1 + (i % 12)).collect()).unwrap();
        let oracle = RemOracle::new(0.9, 21);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(31);
        let mut eval = ReservoirEvaluator::evaluate_base(
            &base,
            60,
            5,
            EvalConfig::default(),
            &mut annotator,
            &mut rng,
        );
        assert!(
            !eval.saturated(),
            "base max weight 12 at K=60 over {} triples must not saturate",
            eval.total_triples()
        );
        let delta = UpdateBatch::from_sizes(vec![4000]).unwrap();
        eval.apply_update(&delta, &mut annotator, &mut rng);
        assert!(
            eval.saturated(),
            "a 4000-triple cluster at K=60 over {} live triples saturates K·w/W",
            eval.total_triples()
        );
        // Conservative under churn: the flag stays up even after the giant
        // cluster is fully retracted, because the biased draws already
        // happened.
        use kg_model::retract::Retraction;
        let giant = 600u32;
        let r = Retraction::new(vec![(giant, (0..4000).collect())]).unwrap();
        eval.apply_retraction(&r, &mut annotator, &mut rng);
        assert!(eval.saturated(), "saturation is monotone under retraction");
    }
}

//! Continuous accuracy monitoring over a sequence of KG updates (§7.3.2).
//!
//! Drives any [`IncrementalEvaluator`] over a stream of update batches,
//! recording the per-batch estimate, MoE, and the *incremental* annotation
//! cost of absorbing each batch — the data behind Fig. 9.
//!
//! The monitor is engine-agnostic: each `apply_update` announces its batch
//! to the annotator (see [`IncrementalEvaluator`]), so the same sequence
//! runs unchanged over the hash `SimulatedAnnotator` or a growable
//! `DenseAnnotator` — the streaming benchmark (`bench-report --streaming`)
//! replays identical sequences under both. It is equally offer-mode
//! agnostic: the reservoir evaluator's batched offer path (see
//! [`crate::dynamic::reservoir::OfferMode`]) is bitwise identical to the
//! per-item loop, so sequences replayed here match across that axis too —
//! regression-tested below and byte-diffed in CI.

use crate::dynamic::IncrementalEvaluator;
use crate::executor::TrialExecutor;
use crate::sharded::{ShardDesign, ShardReplayReport, ShardedReplay};
use kg_annotate::annotator::Annotator;
use kg_annotate::cost::CostModel;
use kg_annotate::oracle::LabelOracle;
use kg_model::implicit::ClusterPopulation;
use kg_model::retract::KgEvent;
use kg_model::update::UpdateBatch;
use kg_sampling::PopulationIndex;
use kg_stats::error::StatsError;
use kg_stats::{PointEstimate, RunningMoments};
use rand::RngCore;

/// Per-batch monitoring record.
#[derive(Debug, Clone, Copy)]
pub struct BatchOutcome {
    /// 1-based index of the update batch.
    pub batch: usize,
    /// Estimate of `μ(G + Δ_1 + … + Δ_batch)` after absorbing the batch.
    pub estimate: PointEstimate,
    /// Achieved MoE at the monitor's α.
    pub moe: f64,
    /// Human seconds spent absorbing *this* batch.
    pub batch_cost_seconds: f64,
    /// Cumulative human seconds since monitoring began.
    pub cumulative_cost_seconds: f64,
    /// Whether the evaluator's sampling design had left its exactness
    /// regime when this estimate was produced (see
    /// [`IncrementalEvaluator::saturated`]) — `true` flags the estimate as
    /// potentially biased rather than merely wide.
    pub saturated: bool,
}

/// Apply a sequence of update batches to an incremental evaluator,
/// recording one [`BatchOutcome`] per batch.
pub fn run_sequence(
    evaluator: &mut dyn IncrementalEvaluator,
    batches: &[UpdateBatch],
    alpha: f64,
    annotator: &mut dyn Annotator,
    rng: &mut dyn RngCore,
) -> Vec<BatchOutcome> {
    let mut outcomes = Vec::with_capacity(batches.len());
    let mut prev_cost = annotator.seconds();
    for (i, delta) in batches.iter().enumerate() {
        let estimate = evaluator.apply_update(delta, annotator, rng);
        let now = annotator.seconds();
        outcomes.push(BatchOutcome {
            batch: i + 1,
            estimate,
            moe: estimate.moe(alpha).expect("valid alpha"),
            batch_cost_seconds: now - prev_cost,
            cumulative_cost_seconds: now,
            saturated: evaluator.saturated(),
        });
        prev_cost = now;
    }
    outcomes
}

/// Apply a churny event sequence — interleaved insertions, retractions,
/// and revisions — to an incremental evaluator, recording one
/// [`BatchOutcome`] per event.
///
/// Each event yields exactly one estimate (a revision's retraction and
/// insertion count as one event, per [`IncrementalEvaluator::apply_event`])
/// and the cost bookkeeping is identical to [`run_sequence`]: retraction
/// itself is sunk-cost-free, so an event's `batch_cost_seconds` reflects
/// only the re-annotation and top-up work it triggered.
pub fn run_event_sequence(
    evaluator: &mut dyn IncrementalEvaluator,
    events: &[KgEvent],
    alpha: f64,
    annotator: &mut dyn Annotator,
    rng: &mut dyn RngCore,
) -> Vec<BatchOutcome> {
    let mut outcomes = Vec::with_capacity(events.len());
    let mut prev_cost = annotator.seconds();
    for (i, event) in events.iter().enumerate() {
        let estimate = evaluator.apply_event(event, annotator, rng);
        let now = annotator.seconds();
        outcomes.push(BatchOutcome {
            batch: i + 1,
            estimate,
            moe: estimate.moe(alpha).expect("valid alpha"),
            batch_cost_seconds: now - prev_cost,
            cumulative_cost_seconds: now,
            saturated: evaluator.saturated(),
        });
        prev_cost = now;
    }
    outcomes
}

/// On-demand sharded audit of the *current* evolving population: build a
/// point-in-time PPS index over `pop` and run one fixed-size sharded
/// replay on it (see [`crate::sharded`]).
///
/// The incremental evaluators above amortize annotation across the update
/// stream; their estimates track the stream cheaply but at reservoir
/// fidelity. When a checkpoint needs a *full-fidelity* snapshot estimate —
/// an audit between batches — that is one large replay, exactly the shape
/// intra-trial sharding accelerates. Latency scales with the shard-worker
/// count while the report stays bitwise invariant to it.
pub fn audit_sharded<P: ClusterPopulation + ?Sized>(
    pop: &P,
    design: ShardDesign,
    oracle: &dyn LabelOracle,
    cost: CostModel,
    replay: &ShardedReplay,
    units: u64,
    seed: u64,
) -> Result<ShardReplayReport, StatsError> {
    let index = PopulationIndex::from_population(pop)?;
    Ok(replay.replay_hash(design, &index, oracle, cost, units, seed))
}

/// Trial-aggregated outcome of one update batch position, from
/// [`run_sequence_trials`].
#[derive(Debug, Clone)]
pub struct BatchTrialStats {
    /// 1-based index of the update batch.
    pub batch: usize,
    /// Post-batch accuracy estimates across trials.
    pub estimate: RunningMoments,
    /// Achieved MoE across trials.
    pub moe: RunningMoments,
    /// Human seconds spent absorbing this batch, across trials.
    pub batch_cost_seconds: RunningMoments,
}

/// Per-batch trial fan-out for the §6 incremental evaluators: replay the
/// same update stream under `trials` counter-based seeds on the
/// [`TrialExecutor`] and aggregate each batch position's estimate, MoE,
/// and incremental cost — bitwise identical at any worker count.
///
/// `replay` receives the trial seed and must return exactly one
/// [`BatchOutcome`] per update batch (build the evaluator + annotator of
/// your choice inside and drive [`run_sequence`]); it is how both RS and
/// SS — and both annotation engines — share one fan-out path.
pub fn run_sequence_trials<F>(
    exec: &TrialExecutor,
    trials: u64,
    base_seed: u64,
    num_batches: usize,
    replay: F,
) -> Vec<BatchTrialStats>
where
    F: Fn(u64) -> Vec<BatchOutcome> + Sync,
{
    let stats = exec.run(trials, base_seed, 3 * num_batches, |seed| {
        let outcomes = replay(seed);
        assert_eq!(
            outcomes.len(),
            num_batches,
            "replay must produce one outcome per update batch"
        );
        let mut v = Vec::with_capacity(3 * num_batches);
        for o in &outcomes {
            v.push(o.estimate.mean);
            v.push(o.moe);
            v.push(o.batch_cost_seconds);
        }
        v
    });
    (0..num_batches)
        .map(|k| BatchTrialStats {
            batch: k + 1,
            estimate: stats[3 * k],
            moe: stats[3 * k + 1],
            batch_cost_seconds: stats[3 * k + 2],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::dynamic::reservoir::ReservoirEvaluator;
    use crate::dynamic::stratified::StratifiedIncremental;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::RemOracle;
    use kg_model::implicit::ImplicitKg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn monitors_rs_over_a_sequence() {
        let base = ImplicitKg::new(vec![4; 1000]).unwrap();
        let oracle = RemOracle::new(0.9, 1);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut rs = ReservoirEvaluator::evaluate_base(
            &base,
            60,
            5,
            EvalConfig::default(),
            &mut annotator,
            &mut rng,
        );
        let batches: Vec<UpdateBatch> = (0..5)
            .map(|_| UpdateBatch::from_sizes(vec![4; 100]).unwrap())
            .collect();
        let outcomes = run_sequence(&mut rs, &batches, 0.05, &mut annotator, &mut rng);
        assert_eq!(outcomes.len(), 5);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.batch, i + 1);
            assert!(o.moe <= 0.05 + 1e-9, "batch {} moe {}", o.batch, o.moe);
            assert!((o.estimate.mean - 0.9).abs() < 0.08);
            assert!(o.batch_cost_seconds >= 0.0);
        }
        // Cumulative cost is monotone.
        assert!(outcomes
            .windows(2)
            .all(|w| w[0].cumulative_cost_seconds <= w[1].cumulative_cost_seconds));
    }

    #[test]
    fn dense_engine_drives_the_monitor_byte_identically() {
        use kg_annotate::annotator::Annotator;
        use kg_annotate::dense::DenseAnnotator;
        use kg_annotate::label_store::LabelStore;
        use std::sync::Arc;

        let base = ImplicitKg::new(vec![4; 500]).unwrap();
        let oracle = RemOracle::new(0.85, 7);
        let batches: Vec<UpdateBatch> = (0..4)
            .map(|i| UpdateBatch::from_sizes(vec![3 + (i % 2); 60]).unwrap())
            .collect();

        let run = |annotator: &mut dyn Annotator| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut rs = ReservoirEvaluator::evaluate_base(
                &base,
                50,
                5,
                EvalConfig::default(),
                annotator,
                &mut rng,
            );
            run_sequence(&mut rs, &batches, 0.05, annotator, &mut rng)
        };

        let mut hash = SimulatedAnnotator::new(&oracle, CostModel::default());
        let hash_out = run(&mut hash);

        let store = Arc::new(LabelStore::materialize(&base, &oracle));
        let mut dense = DenseAnnotator::growable(store, CostModel::default(), Arc::new(oracle));
        let dense_out = run(&mut dense);

        assert_eq!(hash_out.len(), dense_out.len());
        for (h, d) in hash_out.iter().zip(&dense_out) {
            assert_eq!(h.estimate.mean.to_bits(), d.estimate.mean.to_bits());
            assert_eq!(
                h.estimate.var_of_mean.to_bits(),
                d.estimate.var_of_mean.to_bits()
            );
            assert_eq!(
                h.cumulative_cost_seconds.to_bits(),
                d.cumulative_cost_seconds.to_bits()
            );
        }
        assert_eq!(hash.seconds().to_bits(), dense.seconds().to_bits());
        assert_eq!(hash.triples_annotated(), dense.triples_annotated());
    }

    #[test]
    fn churny_event_sequences_are_engine_identical() {
        use kg_annotate::annotator::Annotator;
        use kg_annotate::dense::DenseAnnotator;
        use kg_annotate::label_store::LabelStore;
        use kg_model::retract::{KgEvent, Retraction};
        use std::sync::Arc;

        let base = ImplicitKg::new(vec![4; 500]).unwrap();
        let oracle = RemOracle::new(0.85, 29);
        // Interleaved churn: a pure insert, a pure retraction (full + partial
        // kills), a revision, and a trailing insert. Every retraction
        // addresses raw (insertion-time) offsets of distinct live triples.
        let events = vec![
            KgEvent::Insert(UpdateBatch::from_sizes(vec![3; 60]).unwrap()),
            KgEvent::Retract(
                Retraction::new(vec![
                    (2, vec![0, 1, 2, 3]), // base cluster, fully dead
                    (5, vec![1, 3]),       // base cluster, half dead
                    (500, vec![0, 1, 2]),  // delta cluster, fully dead
                ])
                .unwrap(),
            ),
            KgEvent::Revise(
                Retraction::new(vec![(7, vec![0]), (501, vec![2])]).unwrap(),
                UpdateBatch::from_sizes(vec![4; 40]).unwrap(),
            ),
            KgEvent::Insert(UpdateBatch::from_sizes(vec![2; 50]).unwrap()),
        ];

        let run = |annotator: &mut dyn Annotator| {
            let mut rng = StdRng::seed_from_u64(31);
            let mut rs = ReservoirEvaluator::evaluate_base(
                &base,
                50,
                5,
                EvalConfig::default(),
                annotator,
                &mut rng,
            );
            run_event_sequence(&mut rs, &events, 0.05, annotator, &mut rng)
        };

        let mut hash = SimulatedAnnotator::new(&oracle, CostModel::default());
        let hash_out = run(&mut hash);

        let store = Arc::new(LabelStore::materialize(&base, &oracle));
        let mut dense = DenseAnnotator::growable(store, CostModel::default(), Arc::new(oracle));
        let dense_out = run(&mut dense);

        assert_eq!(hash_out.len(), dense_out.len());
        for (h, d) in hash_out.iter().zip(&dense_out) {
            assert_eq!(
                h.estimate.mean.to_bits(),
                d.estimate.mean.to_bits(),
                "event {} estimate diverged across engines",
                h.batch
            );
            assert_eq!(
                h.estimate.var_of_mean.to_bits(),
                d.estimate.var_of_mean.to_bits()
            );
            assert_eq!(h.estimate.units, d.estimate.units);
            assert_eq!(h.moe.to_bits(), d.moe.to_bits());
            assert_eq!(
                h.cumulative_cost_seconds.to_bits(),
                d.cumulative_cost_seconds.to_bits()
            );
        }
        assert_eq!(hash.seconds().to_bits(), dense.seconds().to_bits());
        assert_eq!(hash.triples_annotated(), dense.triples_annotated());
    }

    #[test]
    fn batched_offers_replay_byte_identically_to_per_item_under_both_engines() {
        use crate::dynamic::reservoir::OfferMode;
        use kg_annotate::annotator::Annotator;
        use kg_annotate::dense::DenseAnnotator;
        use kg_annotate::label_store::LabelStore;
        use std::sync::Arc;

        let base = ImplicitKg::new((0..600).map(|i| 1 + (i % 9)).collect()).unwrap();
        let oracle = RemOracle::new(0.88, 13);
        let batches: Vec<UpdateBatch> = (0..5)
            .map(|i| UpdateBatch::from_sizes(vec![2 + (i % 3); 80]).unwrap())
            .collect();

        let run = |mode: OfferMode, annotator: &mut dyn Annotator| {
            let mut rng = StdRng::seed_from_u64(23);
            let mut rs = ReservoirEvaluator::evaluate_base_with_mode(
                &base,
                45,
                5,
                EvalConfig::default(),
                mode,
                annotator,
                &mut rng,
            );
            let out = run_sequence(&mut rs, &batches, 0.05, annotator, &mut rng);
            (out, rs.replacements(), rs.total_triples())
        };

        let mut store = LabelStore::materialize(&base, &oracle);
        for b in &batches {
            store.extend_with_batch(b, &oracle);
        }
        let store = Arc::new(store);

        for engine in ["hash", "dense"] {
            let mk = |mode: OfferMode| match engine {
                "hash" => {
                    let mut ann = SimulatedAnnotator::new(&oracle, CostModel::default());
                    let r = run(mode, &mut ann);
                    (r, ann.seconds(), ann.triples_annotated())
                }
                _ => {
                    let mut ann = DenseAnnotator::new(store.clone(), CostModel::default());
                    let r = run(mode, &mut ann);
                    (r, ann.seconds(), ann.triples_annotated())
                }
            };
            let ((per_item, rep_a, tot_a), sec_a, ann_a) = mk(OfferMode::PerItem);
            let ((batched, rep_b, tot_b), sec_b, ann_b) = mk(OfferMode::Batched);
            assert_eq!(rep_a, rep_b, "{engine}: replacement counts diverged");
            assert_eq!(tot_a, tot_b);
            assert_eq!(sec_a.to_bits(), sec_b.to_bits(), "{engine}: cost diverged");
            assert_eq!(ann_a, ann_b);
            assert_eq!(per_item.len(), batched.len());
            for (p, b) in per_item.iter().zip(&batched) {
                assert_eq!(
                    p.estimate.mean.to_bits(),
                    b.estimate.mean.to_bits(),
                    "{engine}: batch {} estimate diverged",
                    p.batch
                );
                assert_eq!(
                    p.estimate.var_of_mean.to_bits(),
                    b.estimate.var_of_mean.to_bits()
                );
                assert_eq!(p.estimate.units, b.estimate.units);
                assert_eq!(p.moe.to_bits(), b.moe.to_bits());
                assert_eq!(
                    p.batch_cost_seconds.to_bits(),
                    b.batch_cost_seconds.to_bits()
                );
            }
        }
    }

    #[test]
    fn per_batch_trial_fanout_is_worker_invariant_for_both_evaluators() {
        use crate::executor::TrialExecutor;

        let base = ImplicitKg::new(vec![4; 400]).unwrap();
        let oracle = RemOracle::new(0.9, 5);
        let batches: Vec<UpdateBatch> = (0..3)
            .map(|_| UpdateBatch::from_sizes(vec![4; 50]).unwrap())
            .collect();
        for evaluator in ["RS", "SS"] {
            let replay = |trial_seed: u64| {
                let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
                let mut rng = StdRng::seed_from_u64(trial_seed);
                match evaluator {
                    "RS" => {
                        let mut rs = ReservoirEvaluator::evaluate_base(
                            &base,
                            40,
                            5,
                            EvalConfig::default(),
                            &mut annotator,
                            &mut rng,
                        );
                        run_sequence(&mut rs, &batches, 0.05, &mut annotator, &mut rng)
                    }
                    _ => {
                        let est = kg_stats::PointEstimate::new(0.9, 0.0004, 60).unwrap();
                        let mut ss =
                            StratifiedIncremental::from_base(&base, est, 5, EvalConfig::default());
                        run_sequence(&mut ss, &batches, 0.05, &mut annotator, &mut rng)
                    }
                }
            };
            let one = run_sequence_trials(
                &TrialExecutor::new().with_workers(1),
                10,
                17,
                batches.len(),
                replay,
            );
            let many = run_sequence_trials(
                &TrialExecutor::new().with_workers(4),
                10,
                17,
                batches.len(),
                replay,
            );
            assert_eq!(one.len(), 3);
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.batch, b.batch);
                assert_eq!(a.estimate.mean().to_bits(), b.estimate.mean().to_bits());
                assert_eq!(
                    a.estimate.sample_std().to_bits(),
                    b.estimate.sample_std().to_bits()
                );
                assert_eq!(a.moe.mean().to_bits(), b.moe.mean().to_bits());
                assert_eq!(
                    a.batch_cost_seconds.mean().to_bits(),
                    b.batch_cost_seconds.mean().to_bits()
                );
                assert_eq!(a.estimate.count(), 10);
                assert!((a.estimate.mean() - 0.9).abs() < 0.08, "{evaluator}");
            }
        }
    }

    #[test]
    fn churny_trial_fanout_is_worker_invariant() {
        use crate::executor::TrialExecutor;
        use kg_model::retract::{KgEvent, Retraction};

        let base = ImplicitKg::new(vec![4; 400]).unwrap();
        let oracle = RemOracle::new(0.9, 19);
        let events = vec![
            KgEvent::Insert(UpdateBatch::from_sizes(vec![4; 50]).unwrap()),
            KgEvent::Revise(
                Retraction::new(vec![(1, vec![0, 2]), (400, vec![0, 1, 2, 3])]).unwrap(),
                UpdateBatch::from_sizes(vec![3; 40]).unwrap(),
            ),
            KgEvent::Retract(Retraction::new(vec![(9, vec![1]), (402, vec![0])]).unwrap()),
        ];
        let replay = |trial_seed: u64| {
            let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
            let mut rng = StdRng::seed_from_u64(trial_seed);
            let mut rs = ReservoirEvaluator::evaluate_base(
                &base,
                40,
                5,
                EvalConfig::default(),
                &mut annotator,
                &mut rng,
            );
            run_event_sequence(&mut rs, &events, 0.05, &mut annotator, &mut rng)
        };
        let one = run_sequence_trials(
            &TrialExecutor::new().with_workers(1),
            10,
            29,
            events.len(),
            replay,
        );
        let many = run_sequence_trials(
            &TrialExecutor::new().with_workers(4),
            10,
            29,
            events.len(),
            replay,
        );
        assert_eq!(one.len(), events.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.estimate.mean().to_bits(), b.estimate.mean().to_bits());
            assert_eq!(a.moe.mean().to_bits(), b.moe.mean().to_bits());
            assert_eq!(
                a.batch_cost_seconds.mean().to_bits(),
                b.batch_cost_seconds.mean().to_bits()
            );
        }
    }

    #[test]
    fn sharded_audit_snapshots_the_evolved_population() {
        let mut kg = ImplicitKg::new((0..700).map(|i| 1 + (i % 11)).collect()).unwrap();
        for _ in 0..3 {
            let (next, _) = UpdateBatch::from_sizes(vec![5; 80]).unwrap().apply_to(&kg);
            kg = next;
        }
        let oracle = RemOracle::new(0.9, 3);
        let audit = |workers| {
            audit_sharded(
                &kg,
                ShardDesign::TwoStage { m: 4 },
                &oracle,
                CostModel::default(),
                &ShardedReplay::new().with_shard_workers(workers),
                1200,
                0xA0D1,
            )
            .unwrap()
        };
        let one = audit(1);
        let many = audit(6);
        assert_eq!(one.units, 1200);
        assert!((one.estimate.mean - 0.9).abs() < 0.05);
        assert_eq!(one.estimate.mean.to_bits(), many.estimate.mean.to_bits());
        assert_eq!(one.cost_seconds.to_bits(), many.cost_seconds.to_bits());
        assert_eq!(one.labeled, many.labeled);
    }

    #[test]
    fn monitors_ss_and_costs_less_than_reannotation() {
        let base = ImplicitKg::new(vec![4; 1000]).unwrap();
        let oracle = RemOracle::new(0.9, 2);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(2);
        let base_est = kg_stats::PointEstimate::new(0.9, 0.0004, 60).unwrap();
        let mut ss = StratifiedIncremental::from_base(&base, base_est, 5, EvalConfig::default());
        let batches: Vec<UpdateBatch> = (0..5)
            .map(|_| UpdateBatch::from_sizes(vec![4; 100]).unwrap())
            .collect();
        let outcomes = run_sequence(&mut ss, &batches, 0.05, &mut annotator, &mut rng);
        assert_eq!(outcomes.len(), 5);
        let total_hours = outcomes.last().unwrap().cumulative_cost_seconds / 3600.0;
        // Five 10%-updates should cost far less than five static runs
        // (≈ 30+ clusters × (45 + 5·25) s each ≈ 1.4 h each).
        assert!(total_hours < 3.0, "total {total_hours} h");
    }
}

//! Extractable, serializable monitor state.
//!
//! Everything a running incremental evaluator mutates lives here, split
//! out of the evaluator structs so a session layer can own it: the
//! evaluators ([`super::reservoir::ReservoirEvaluator`],
//! [`super::stratified::StratifiedIncremental`]) are thin logic over a
//! `&mut` of these states, and [`MonitorState`] serializes the whole
//! bundle through the `kg_stats::codec` wire format (`KGMS` records).
//!
//! The contract is the repo's signature invariant extended across process
//! boundaries: a monitor whose [`MonitorState`] (plus RNG cursor) is
//! snapshotted mid-stream and restored in a fresh process produces
//! **byte-identical** estimates to the uninterrupted run. That holds
//! because estimates are a pure function of (monitor state, RNG stream,
//! oracle labels): annotation *memoization* lives in the annotator and
//! affects only cost accounting, never a label or an RNG draw.

use kg_stats::codec::{CodecError, Decoder, Encoder};
use kg_stats::pps::GrowablePps;
use kg_stats::reservoir::WeightedReservoirExpJ;
use kg_stats::{PointEstimate, RunningMoments};
use std::collections::BTreeMap;

/// Every mutable field of the reservoir (RS) evaluator.
#[derive(Clone)]
pub struct ReservoirState {
    /// A-ExpJ weighted reservoir of cluster ids.
    pub(crate) reservoir: WeightedReservoirExpJ<u32>,
    /// Second-stage accuracy of each current reservoir member. Ordered by
    /// cluster id so the estimate's summation order is deterministic (a
    /// hash map would make the last float bits depend on its random
    /// state).
    pub(crate) member_accuracy: BTreeMap<u32, f64>,
    /// Top-up accuracies drawn from the current KG state (cleared on each
    /// update because their sampling frame becomes stale).
    pub(crate) extras: Vec<f64>,
    /// Evolving KG skeleton: PPS frame over every cluster seen so far,
    /// doubling as the size table (`pps.weight(c)` is cluster `c`'s size).
    pub(crate) pps: GrowablePps,
    /// Largest cluster weight ever *appended* to the stream (base or
    /// update), powering the saturation flag. Monotone — retractions never
    /// lower it, which keeps the flag conservative under churn: once a
    /// cluster big enough to saturate its inclusion probability has been
    /// seen, the plain-mean estimate's exactness argument is suspect for
    /// the rest of the stream.
    pub(crate) max_gross_weight: u64,
}

impl ReservoirState {
    /// Whether some cluster's reservoir inclusion probability has
    /// saturated: `K·w/W ≥ 1` for reservoir capacity `K`, some appended
    /// cluster weight `w`, and live total `W`. Beyond this point the RS
    /// plug-in plain-mean estimate of the weighted reservoir sample is no
    /// longer exact (the PR 8 drift-family bias, ≈ +0.02 on the repro
    /// stream), so the monitor surfaces the flag instead of silently
    /// biasing.
    pub fn saturated(&self) -> bool {
        let live = self.pps.total();
        live > 0
            && (self.reservoir.capacity() as u128) * (self.max_gross_weight as u128) >= live as u128
    }
}

/// One stratum of the stratified (SS) evaluator: a segment of the evolving
/// KG with its (possibly frozen) estimate.
#[derive(Clone)]
pub(crate) struct StratumEval {
    /// Global cluster id of the stratum's first cluster — strata partition
    /// the id space into contiguous runs, so a retraction routes to its
    /// stratum by binary search over these.
    pub(crate) first_cluster: u32,
    /// Clusters minted by the stratum's batch.
    pub(crate) num_clusters: u32,
    /// **Live** triples in the stratum (its weight numerator) —
    /// decremented by retractions.
    pub(crate) triples: u64,
    /// Estimate source: frozen (reused from a previous round) or live
    /// accumulation.
    pub(crate) state: StratumState,
}

/// Frozen-or-live estimate source of one stratum.
#[derive(Clone)]
pub(crate) enum StratumState {
    /// Reused verbatim; never sampled again. Retractions only shrink the
    /// stratum's weight — Algorithm 2 never revisits its sample.
    Frozen(PointEstimate),
    /// The stratum currently being sampled.
    Live {
        /// PPS frame over the stratum's cluster sizes — adopts the batch's
        /// cached weight prefix as a shared segment, O(1) to build, and
        /// doubles as the live size table (`pps.weight(local)`), so
        /// retraction decrements flow straight into the sampling frame.
        pps: GrowablePps,
        /// Per-draw second-stage accuracies.
        accs: RunningMoments,
    },
}

impl StratumEval {
    /// The stratum's current estimate (frozen verbatim, or the live
    /// accumulator's plug-in with the conservative small-n fallback).
    pub(crate) fn estimate(&self, m: usize) -> PointEstimate {
        match &self.state {
            StratumState::Frozen(e) => *e,
            StratumState::Live { accs, .. } => {
                let n = accs.count() as usize;
                if n < 2 {
                    // Conservative until the within-stratum variance is
                    // estimable, mirroring `kg_sampling::stratified`.
                    PointEstimate::new(if n == 1 { accs.mean() } else { 0.5 }, 0.25, n)
                        .expect("constant variance is valid")
                } else {
                    PointEstimate::new(
                        accs.mean(),
                        kg_sampling::twcs::floored_variance_of_mean(accs, m),
                        n,
                    )
                    .expect("plug-in variance is non-negative")
                }
            }
        }
    }
}

/// Every mutable field of the stratified (SS) evaluator.
#[derive(Clone)]
pub struct StratifiedState {
    /// Base stratum plus one per applied update, contiguous in cluster-id
    /// space; only the last may be live.
    pub(crate) strata: Vec<StratumEval>,
    /// Next cluster id an update batch will mint.
    pub(crate) next_cluster_id: u32,
}

/// The complete extractable state of one monitor — what a session owns,
/// checkpoints, and restores.
#[derive(Clone)]
#[allow(clippy::large_enum_variant)] // short-lived handle, never stored in bulk
pub enum MonitorState {
    /// Reservoir (RS) monitor state.
    Reservoir(ReservoirState),
    /// Stratified (SS) monitor state.
    Stratified(StratifiedState),
}

const TAG_RESERVOIR: u8 = 0;
const TAG_STRATIFIED: u8 = 1;
const TAG_FROZEN: u8 = 0;
const TAG_LIVE: u8 = 1;

fn put_estimate(e: &mut Encoder, est: &PointEstimate) {
    e.put_f64(est.mean);
    e.put_f64(est.var_of_mean);
    e.put_usize(est.units);
}

fn get_estimate(d: &mut Decoder<'_>) -> Result<PointEstimate, CodecError> {
    let mean = d.get_f64("estimate mean")?;
    let var = d.get_f64("estimate var_of_mean")?;
    let units = d.get_usize("estimate units")?;
    PointEstimate::new(mean, var, units).map_err(|_| CodecError::Invalid {
        what: "estimate variance must be finite and non-negative",
    })
}

fn get_accuracy(d: &mut Decoder<'_>, what: &'static str) -> Result<f64, CodecError> {
    let v = d.get_f64(what)?;
    if !(0.0..=1.0).contains(&v) {
        return Err(CodecError::Invalid {
            what: "accuracies must lie in [0, 1]",
        });
    }
    Ok(v)
}

impl MonitorState {
    /// Record magic for monitor-state snapshots.
    pub const MAGIC: [u8; 4] = *b"KGMS";
    /// Current snapshot format version.
    pub const VERSION: u16 = 1;

    /// Serialize into a standalone `KGMS` v1 record. Composes the `KGRV` /
    /// `KGPP` / `KGRM` payloads of the nested statistics state, so the
    /// bytes are bitwise — floats travel as exact bit patterns.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::with_header(Self::MAGIC, Self::VERSION);
        self.snapshot_into(&mut e);
        e.finish()
    }

    /// Restore from a standalone `KGMS` record. Typed error on corrupt,
    /// truncated, or unknown-version input — never a panic.
    pub fn restore(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let version = d.expect_header(Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(CodecError::UnsupportedVersion {
                magic: Self::MAGIC,
                found: version,
                supported: Self::VERSION,
            });
        }
        let state = Self::restore_from(&mut d)?;
        d.finish()?;
        Ok(state)
    }

    /// Append the headerless payload (for embedding in session records).
    pub fn snapshot_into(&self, e: &mut Encoder) {
        match self {
            MonitorState::Reservoir(rs) => {
                e.put_u8(TAG_RESERVOIR);
                rs.reservoir.snapshot_into(e);
                e.put_usize(rs.member_accuracy.len());
                for (&c, &acc) in &rs.member_accuracy {
                    e.put_u32(c);
                    e.put_f64(acc);
                }
                e.put_usize(rs.extras.len());
                for &acc in &rs.extras {
                    e.put_f64(acc);
                }
                rs.pps.snapshot_into(e);
                e.put_u64(rs.max_gross_weight);
            }
            MonitorState::Stratified(ss) => {
                e.put_u8(TAG_STRATIFIED);
                e.put_u32(ss.next_cluster_id);
                e.put_usize(ss.strata.len());
                for s in &ss.strata {
                    e.put_u32(s.first_cluster);
                    e.put_u32(s.num_clusters);
                    e.put_u64(s.triples);
                    match &s.state {
                        StratumState::Frozen(est) => {
                            e.put_u8(TAG_FROZEN);
                            put_estimate(e, est);
                        }
                        StratumState::Live { pps, accs } => {
                            e.put_u8(TAG_LIVE);
                            pps.snapshot_into(e);
                            accs.snapshot_into(e);
                        }
                    }
                }
            }
        }
    }

    /// Decode the headerless payload written by [`Self::snapshot_into`].
    pub fn restore_from(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.get_u8("monitor state tag")? {
            TAG_RESERVOIR => {
                let reservoir = WeightedReservoirExpJ::<u32>::restore_from(d)?;
                let n = d.get_len(12, "reservoir member accuracies")?;
                let mut member_accuracy = BTreeMap::new();
                let mut prev: Option<u32> = None;
                for _ in 0..n {
                    let c = d.get_u32("member cluster id")?;
                    if prev.is_some_and(|p| p >= c) {
                        return Err(CodecError::Invalid {
                            what: "member accuracies must be sorted by cluster id",
                        });
                    }
                    prev = Some(c);
                    member_accuracy.insert(c, get_accuracy(d, "member accuracy")?);
                }
                let n = d.get_len(8, "top-up accuracies")?;
                let mut extras = Vec::with_capacity(n);
                for _ in 0..n {
                    extras.push(get_accuracy(d, "top-up accuracy")?);
                }
                let pps = GrowablePps::restore_from(d)?;
                let max_gross_weight = d.get_u64("max gross weight")?;
                for &c in member_accuracy.keys() {
                    if (c as usize) >= pps.len() {
                        return Err(CodecError::Invalid {
                            what: "reservoir member outside the PPS frame",
                        });
                    }
                }
                Ok(MonitorState::Reservoir(ReservoirState {
                    reservoir,
                    member_accuracy,
                    extras,
                    pps,
                    max_gross_weight,
                }))
            }
            TAG_STRATIFIED => {
                let next_cluster_id = d.get_u32("next cluster id")?;
                let n = d.get_len(17, "strata")?;
                if n == 0 {
                    return Err(CodecError::Invalid {
                        what: "stratified state requires at least the base stratum",
                    });
                }
                let mut strata = Vec::with_capacity(n);
                let mut expect_first = 0u32;
                for i in 0..n {
                    let first_cluster = d.get_u32("stratum first cluster")?;
                    let num_clusters = d.get_u32("stratum cluster count")?;
                    let triples = d.get_u64("stratum triples")?;
                    if first_cluster != expect_first {
                        return Err(CodecError::Invalid {
                            what: "strata must partition the cluster id space contiguously",
                        });
                    }
                    expect_first =
                        expect_first
                            .checked_add(num_clusters)
                            .ok_or(CodecError::Invalid {
                                what: "stratum cluster ids overflow u32",
                            })?;
                    let state = match d.get_u8("stratum state tag")? {
                        TAG_FROZEN => StratumState::Frozen(get_estimate(d)?),
                        TAG_LIVE => {
                            if i + 1 != n {
                                return Err(CodecError::Invalid {
                                    what: "only the last stratum may be live",
                                });
                            }
                            let pps = GrowablePps::restore_from(d)?;
                            if pps.len() != num_clusters as usize {
                                return Err(CodecError::Invalid {
                                    what: "live stratum frame must cover its clusters",
                                });
                            }
                            let accs = RunningMoments::restore_from(d)?;
                            StratumState::Live { pps, accs }
                        }
                        _ => {
                            return Err(CodecError::Invalid {
                                what: "stratum state tag must be 0 or 1",
                            })
                        }
                    };
                    strata.push(StratumEval {
                        first_cluster,
                        num_clusters,
                        triples,
                        state,
                    });
                }
                if expect_first != next_cluster_id {
                    return Err(CodecError::Invalid {
                        what: "next cluster id must follow the last stratum",
                    });
                }
                Ok(MonitorState::Stratified(StratifiedState {
                    strata,
                    next_cluster_id,
                }))
            }
            _ => Err(CodecError::Invalid {
                what: "monitor state tag must be 0 (reservoir) or 1 (stratified)",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::dynamic::reservoir::ReservoirEvaluator;
    use crate::dynamic::stratified::StratifiedIncremental;
    use crate::dynamic::IncrementalEvaluator;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::RemOracle;
    use kg_model::implicit::ImplicitKg;
    use kg_model::update::UpdateBatch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rs_state() -> MonitorState {
        let base = ImplicitKg::new((0..600).map(|i| 1 + (i % 9)).collect()).unwrap();
        let oracle = RemOracle::new(0.9, 3);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(5);
        let mut rs = ReservoirEvaluator::evaluate_base(
            &base,
            40,
            5,
            EvalConfig::default(),
            &mut annotator,
            &mut rng,
        );
        let delta = UpdateBatch::from_sizes(vec![3; 80]).unwrap();
        rs.apply_update(&delta, &mut annotator, &mut rng);
        rs.into_state()
    }

    fn ss_state() -> MonitorState {
        let base = ImplicitKg::new(vec![4; 500]).unwrap();
        let oracle = RemOracle::new(0.9, 7);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(9);
        let est = PointEstimate::new(0.9, 0.0004, 60).unwrap();
        let mut ss = StratifiedIncremental::from_base(&base, est, 5, EvalConfig::default());
        let delta = UpdateBatch::from_sizes(vec![4; 60]).unwrap();
        ss.apply_update(&delta, &mut annotator, &mut rng);
        ss.into_state()
    }

    #[test]
    fn monitor_state_round_trip_is_byte_stable() {
        for state in [rs_state(), ss_state()] {
            let bytes = state.snapshot();
            let restored = MonitorState::restore(&bytes).unwrap();
            assert_eq!(restored.snapshot(), bytes, "round-trip not byte-stable");
            // Every truncation is a typed error, never a panic.
            for cut in 0..bytes.len() {
                assert!(MonitorState::restore(&bytes[..cut]).is_err(), "cut {cut}");
            }
            let mut bad = bytes.clone();
            bad[4] = 0xEE;
            assert!(matches!(
                MonitorState::restore(&bad),
                Err(CodecError::UnsupportedVersion { .. })
            ));
            let mut bad = bytes.clone();
            bad[6] = 7; // monitor tag
            assert!(matches!(
                MonitorState::restore(&bad),
                Err(CodecError::Invalid { .. })
            ));
        }
    }

    #[test]
    fn restored_evaluator_estimates_identically() {
        let (a, b) = match (
            rs_state(),
            MonitorState::restore(&rs_state().snapshot()).unwrap(),
        ) {
            (MonitorState::Reservoir(a), MonitorState::Reservoir(b)) => (a, b),
            _ => panic!("reservoir state expected"),
        };
        let cfg = EvalConfig::default();
        let orig = ReservoirEvaluator::from_state(a, 5, cfg, Default::default());
        let restored = ReservoirEvaluator::from_state(b, 5, cfg, Default::default());
        let (ea, eb) = (orig.estimate(), restored.estimate());
        assert_eq!(ea.mean.to_bits(), eb.mean.to_bits());
        assert_eq!(ea.var_of_mean.to_bits(), eb.var_of_mean.to_bits());
        assert_eq!(ea.units, eb.units);
        assert_eq!(orig.saturated(), restored.saturated());
    }
}

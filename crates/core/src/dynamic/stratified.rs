//! Stratified Incremental Evaluation (§6.2, Algorithm 2).
//!
//! Every update batch `Δ_i` becomes its own stratum. Previous strata —
//! including the original base evaluation — are *never re-sampled*: their
//! estimates `(μ̂_h, Var[μ̂_h])` are reused verbatim and combined with the
//! newest stratum via Eq. 13, with weights proportional to triple counts.
//! Only the newest stratum is sampled (TWCS) until the combined MoE meets
//! the target.
//!
//! This total reuse is both SS's strength (it is the cheapest incremental
//! strategy, 20–67% below RS in §7.3) and its weakness: a bad early
//! estimate persists, since nothing ever refreshes old strata — the
//! fault-tolerance trade-off of Fig. 9.
//!
//! All mutable state lives in [`StratifiedState`] (see
//! [`crate::dynamic::state`]): the evaluator is thin logic over it, so a
//! session can extract, checkpoint, and restore the state mid-stream with
//! byte-identical estimates thereafter.

use crate::config::EvalConfig;
use crate::dynamic::state::{MonitorState, StratifiedState, StratumEval, StratumState};
use crate::dynamic::IncrementalEvaluator;
use kg_annotate::annotator::Annotator;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::retract::Retraction;
use kg_model::update::UpdateBatch;
use kg_sampling::twcs::annotate_cluster_subset;
use kg_stats::pps::GrowablePps;
use kg_stats::{PointEstimate, RunningMoments};
use rand::RngCore;

/// Stratified incremental evaluator (SS in §7.3).
///
/// Engine-agnostic: `apply_update` announces each batch to the annotator
/// via [`Annotator::extend_population`] before sampling its stratum, so
/// the dense arena and the hash engine are interchangeable here just as
/// they are for the static designs.
pub struct StratifiedIncremental {
    m: usize,
    config: EvalConfig,
    /// Every mutable field — extractable for checkpoint/restore.
    pub(crate) state: StratifiedState,
}

impl StratifiedIncremental {
    /// Start from an already evaluated base KG: `base_estimate` is the
    /// (μ̂, Var) produced by a previous static evaluation of `base`.
    ///
    /// Passing a deliberately biased estimate reproduces the Fig. 9
    /// fault-tolerance scenario.
    pub fn from_base(
        base: &ImplicitKg,
        base_estimate: PointEstimate,
        m: usize,
        config: EvalConfig,
    ) -> Self {
        StratifiedIncremental {
            m,
            config,
            state: StratifiedState {
                strata: vec![StratumEval {
                    first_cluster: 0,
                    num_clusters: base.num_clusters() as u32,
                    triples: base.total_triples(),
                    state: StratumState::Frozen(base_estimate),
                }],
                next_cluster_id: base.num_clusters() as u32,
            },
        }
    }

    /// Rebuild an evaluator around restored [`StratifiedState`] — the
    /// checkpoint/restore path. `m` and `config` are spec, not state: the
    /// session record carries them alongside the state bytes.
    pub fn from_state(state: StratifiedState, m: usize, config: EvalConfig) -> Self {
        StratifiedIncremental { m, config, state }
    }

    /// Borrow the extractable state.
    pub fn state(&self) -> &StratifiedState {
        &self.state
    }

    /// Extract the state, consuming the evaluator.
    pub fn into_state(self) -> MonitorState {
        MonitorState::Stratified(self.state)
    }

    /// Number of strata (base + one per applied update).
    pub fn num_strata(&self) -> usize {
        self.state.strata.len()
    }

    /// Current stratum weights `W_h` (triple shares).
    pub fn weights(&self) -> Vec<f64> {
        let total: u64 = self.state.strata.iter().map(|s| s.triples).sum();
        self.state
            .strata
            .iter()
            .map(|s| s.triples as f64 / total as f64)
            .collect()
    }

    fn combined(&self) -> PointEstimate {
        let weights = self.weights();
        let m = self.m;
        PointEstimate::stratified(
            weights
                .into_iter()
                .zip(self.state.strata.iter().map(|s| s.estimate(m))),
        )
        .expect("weights sum to one over non-empty strata")
    }
}

impl IncrementalEvaluator for StratifiedIncremental {
    fn apply_update(
        &mut self,
        delta: &UpdateBatch,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> PointEstimate {
        // Announce the batch before annotating any of its fresh ids, so a
        // materialized engine can grow its label state (no-op for the hash
        // engine, and for replays over a pre-evolved store).
        annotator.extend_population(self.state.next_cluster_id, delta);
        // Freeze the previous live stratum (if any): Algorithm 2 reuses its
        // estimate from now on.
        let m = self.m;
        if let Some(last) = self.state.strata.last_mut() {
            let est = last.estimate(m);
            if matches!(last.state, StratumState::Live { .. }) {
                last.state = StratumState::Frozen(est);
            }
        }
        if delta.num_delta_clusters() == 0 {
            return self.combined();
        }
        // O(1): the stratum's PPS frame *adopts* the batch's cached weight
        // prefix — nothing per-cluster happens here at all.
        let pps =
            GrowablePps::shared(delta.weight_prefix_shared()).expect("Δe groups are non-empty");
        let first_cluster = self.state.next_cluster_id;
        let num_clusters = delta.num_delta_clusters() as u32;
        self.state.next_cluster_id += num_clusters;
        self.state.strata.push(StratumEval {
            first_cluster,
            num_clusters,
            triples: delta.total_triples(),
            state: StratumState::Live {
                pps,
                accs: RunningMoments::new(),
            },
        });

        // Sample the new stratum until the combined MoE meets the target.
        // Every stratum gets at least two draws so its estimate is real —
        // a frozen never-sampled stratum would contribute an uninformative
        // (0.5, 0.25) forever, biasing the whole sequence.
        let mut drawn = 0usize;
        let mut scratch: Vec<usize> = Vec::with_capacity(self.m);
        loop {
            let live_units = match &self.state.strata.last().expect("just pushed").state {
                StratumState::Live { accs, .. } => accs.count(),
                StratumState::Frozen(_) => unreachable!("last stratum is live"),
            };
            if live_units >= 2 {
                let est = self.combined();
                let moe = est.moe(self.config.alpha).expect("valid alpha");
                if moe <= self.config.target_moe || drawn >= self.config.max_units {
                    break;
                }
            }
            let live = self.state.strata.last_mut().expect("just pushed");
            let first_cluster = live.first_cluster;
            if let StratumState::Live { pps, accs } = &mut live.state {
                for _ in 0..self.config.batch_size {
                    let local = pps.sample(rng);
                    let cluster = first_cluster + local as u32;
                    let acc = annotate_cluster_subset(
                        cluster,
                        pps.weight(local) as usize,
                        self.m,
                        rng,
                        annotator,
                        &mut scratch,
                    );
                    accs.push(acc);
                    drawn += 1;
                }
            }
        }
        self.combined()
    }

    fn apply_retraction(
        &mut self,
        retraction: &Retraction,
        annotator: &mut dyn Annotator,
        _rng: &mut dyn RngCore,
    ) -> PointEstimate {
        // Tombstone the annotator's view so any later sampling of touched
        // live-stratum clusters addresses the shrunken coordinate space.
        annotator.retract(retraction);
        // Route each entry to its stratum (strata partition the cluster id
        // space into contiguous, increasing runs) and shrink the stratum's
        // weight numerator. Frozen strata keep their estimate verbatim —
        // Algorithm 2 never re-samples old strata, so a retraction there
        // is pure weight correction; the live stratum additionally
        // decrements its PPS frame so dead triples leave the sampling
        // frame immediately.
        for (cluster, offsets) in retraction.entries() {
            let dead = offsets.len() as u64;
            let idx = self
                .state
                .strata
                .partition_point(|s| s.first_cluster <= *cluster)
                .checked_sub(1)
                .expect("strata start at cluster 0");
            let stratum = &mut self.state.strata[idx];
            assert!(
                *cluster < stratum.first_cluster + stratum.num_clusters,
                "retraction addresses a cluster no stratum minted"
            );
            stratum.triples = stratum
                .triples
                .checked_sub(dead)
                .expect("stratum triple count covers its retractions");
            if let StratumState::Live { pps, .. } = &mut stratum.state {
                pps.decrement((*cluster - stratum.first_cluster) as usize, dead)
                    .expect("retraction addresses live triples");
            }
        }
        // No fresh sampling: SS stays the cheapest strategy — deletions
        // shift stratum weights, and the combined estimate follows Eq. 13
        // with the corrected weights.
        self.combined()
    }

    fn estimate(&self) -> PointEstimate {
        self.combined()
    }

    fn name(&self) -> &'static str {
        "SS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::RemOracle;
    use kg_annotate::piecewise::PiecewiseOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_kg() -> ImplicitKg {
        ImplicitKg::new(vec![4; 1000]).unwrap() // 4000 triples
    }

    fn base_estimate(mean: f64) -> PointEstimate {
        // A plausible converged base estimate: MoE ≈ 4% at 95%.
        PointEstimate::new(mean, 0.0004, 60).unwrap()
    }

    #[test]
    fn reuses_base_and_samples_only_delta() {
        let base = base_kg();
        let oracle = RemOracle::new(0.9, 1);
        let mut ss =
            StratifiedIncremental::from_base(&base, base_estimate(0.9), 5, EvalConfig::default());
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(1);
        let delta = UpdateBatch::from_sizes(vec![4; 100]).unwrap(); // 10% update
        let est = ss.apply_update(&delta, &mut annotator, &mut rng);
        assert!(est.moe(0.05).unwrap() <= 0.05);
        assert_eq!(ss.num_strata(), 2);
        // Every annotated triple belongs to the delta segment (ids ≥ 1000).
        assert!(annotator.triples_annotated() > 0);
        let w = ss.weights();
        assert!((w[0] - 4000.0 / 4400.0).abs() < 1e-9);
    }

    #[test]
    fn combined_estimate_is_weighted_mean() {
        let base = base_kg();
        // Base at 90%; update of equal size at ~0%: combined ≈ 45%.
        let mut oracle = PiecewiseOracle::new(Box::new(RemOracle::new(0.9, 2)));
        oracle.push_segment(1000, Box::new(RemOracle::new(0.0, 3)));
        let mut ss =
            StratifiedIncremental::from_base(&base, base_estimate(0.9), 5, EvalConfig::default());
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(2);
        let delta = UpdateBatch::from_sizes(vec![4; 1000]).unwrap();
        let est = ss.apply_update(&delta, &mut annotator, &mut rng);
        assert!((est.mean - 0.45).abs() < 0.05, "estimate {}", est.mean);
    }

    #[test]
    fn sequence_of_updates_accumulates_strata() {
        let base = base_kg();
        let oracle = RemOracle::new(0.9, 4);
        let mut ss =
            StratifiedIncremental::from_base(&base, base_estimate(0.9), 5, EvalConfig::default());
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let delta = UpdateBatch::from_sizes(vec![4; 100]).unwrap();
            let est = ss.apply_update(&delta, &mut annotator, &mut rng);
            assert!(est.moe(0.05).unwrap() <= 0.05);
        }
        assert_eq!(ss.num_strata(), 6);
        let wsum: f64 = ss.weights().iter().sum();
        assert!((wsum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bad_base_estimate_persists() {
        // The fault-tolerance weakness: an over-estimated base keeps the
        // combined estimate high even after several accurate updates.
        let base = base_kg();
        let oracle = RemOracle::new(0.9, 5);
        let biased = base_estimate(0.99); // truth is 0.9
        let mut ss = StratifiedIncremental::from_base(&base, biased, 5, EvalConfig::default());
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..5 {
            let delta = UpdateBatch::from_sizes(vec![4; 100]).unwrap();
            ss.apply_update(&delta, &mut annotator, &mut rng);
        }
        // Base weight after 5 × 10% updates is 2/3; bias ≈ 0.09·(2/3) ≈ 0.06.
        let est = ss.estimate();
        assert!(
            est.mean > 0.93,
            "bias should persist, estimate {}",
            est.mean
        );
    }

    #[test]
    fn retraction_shifts_stratum_weights_toward_the_survivors() {
        use kg_model::retract::Retraction;

        // Base at 90%; an equal-size update at ~0% drags the combined
        // estimate to ≈45%; retracting most of the bad stratum restores it.
        let base = base_kg();
        let mut oracle = PiecewiseOracle::new(Box::new(RemOracle::new(0.9, 8)));
        oracle.push_segment(1000, Box::new(RemOracle::new(0.0, 9)));
        let mut ss =
            StratifiedIncremental::from_base(&base, base_estimate(0.9), 5, EvalConfig::default());
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(10);
        let delta = UpdateBatch::from_sizes(vec![4; 1000]).unwrap();
        let est = ss.apply_update(&delta, &mut annotator, &mut rng);
        assert!((est.mean - 0.45).abs() < 0.05);
        // Retract 3 of 4 triples from 900 of the bad stratum's clusters:
        // live bad weight falls from 4000 to 1300.
        let entries: Vec<(u32, Vec<u32>)> = (1000..1900).map(|c| (c, vec![0, 1, 2])).collect();
        let r = Retraction::new(entries).unwrap();
        let cost_before = annotator.seconds();
        let est = ss.apply_retraction(&r, &mut annotator, &mut rng);
        // Weight correction only — no fresh annotation was charged.
        assert_eq!(annotator.seconds(), cost_before);
        let expected = (4000.0 * 0.9 + 1300.0 * 0.0) / 5300.0;
        assert!(
            (est.mean - expected).abs() < 0.05,
            "estimate {} should approach {expected}",
            est.mean
        );
        let w = ss.weights();
        assert!((w[1] - 1300.0 / 5300.0).abs() < 1e-9);
        // The live stratum keeps sampling correctly after the decrement.
        let delta = UpdateBatch::from_sizes(vec![4; 100]).unwrap();
        let est = ss.apply_update(&delta, &mut annotator, &mut rng);
        assert!(est.moe(0.05).unwrap() <= 0.05);
        assert_eq!(ss.num_strata(), 3);
    }

    #[test]
    fn empty_update_is_a_no_op() {
        let base = base_kg();
        let oracle = RemOracle::new(0.9, 7);
        let mut ss =
            StratifiedIncremental::from_base(&base, base_estimate(0.9), 5, EvalConfig::default());
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(8);
        let delta = UpdateBatch::from_sizes(vec![]).unwrap();
        let est = ss.apply_update(&delta, &mut annotator, &mut rng);
        assert_eq!(ss.num_strata(), 1);
        assert!((est.mean - 0.9).abs() < 1e-9);
        assert_eq!(annotator.triples_annotated(), 0);
    }

    #[test]
    fn state_round_trip_resumes_the_live_stratum() {
        // Checkpoint after one update, restore, and verify both copies
        // produce byte-identical estimates for the rest of the stream.
        let base = base_kg();
        let oracle = RemOracle::new(0.9, 12);
        let mut ss =
            StratifiedIncremental::from_base(&base, base_estimate(0.9), 5, EvalConfig::default());
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut rng = StdRng::seed_from_u64(13);
        let delta = UpdateBatch::from_sizes(vec![4; 100]).unwrap();
        ss.apply_update(&delta, &mut annotator, &mut rng);
        let rng_state = rng.state();
        let bytes = ss.into_state().snapshot();
        let restored = match MonitorState::restore(&bytes).unwrap() {
            MonitorState::Stratified(s) => s,
            _ => panic!("stratified state expected"),
        };
        let mut a = StratifiedIncremental::from_state(restored.clone(), 5, EvalConfig::default());
        let mut b = StratifiedIncremental::from_state(restored, 5, EvalConfig::default());
        let mut rng_a = StdRng::from_state(rng_state);
        let mut rng_b = StdRng::from_state(rng_state);
        let mut ann_a = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut ann_b = SimulatedAnnotator::new(&oracle, CostModel::default());
        for round in 0..3 {
            let delta = UpdateBatch::from_sizes(vec![3; 80]).unwrap();
            let ea = a.apply_update(&delta, &mut ann_a, &mut rng_a);
            let eb = b.apply_update(&delta, &mut ann_b, &mut rng_b);
            assert_eq!(ea.mean.to_bits(), eb.mean.to_bits(), "round {round}");
            assert_eq!(ea.var_of_mean.to_bits(), eb.var_of_mean.to_bits());
            assert_eq!(ea.units, eb.units);
        }
    }
}

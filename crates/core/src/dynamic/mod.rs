//! Incremental evaluation on evolving KGs (§6).
//!
//! Two strategies, both reusing previous annotations instead of re-running
//! static evaluation from scratch:
//!
//! * [`reservoir::ReservoirEvaluator`] — Algorithm 1: a weighted reservoir
//!   of clusters (Efraimidis–Spirakis keys `u^{1/|Δe|}`) updated in one
//!   pass over the insertion stream; only clusters that *enter* the
//!   reservoir need fresh annotation, bounded by `O(|R|·log(N_j/N_i))`
//!   (Proposition 3).
//! * [`stratified::StratifiedIncremental`] — Algorithm 2: each update batch
//!   is a new stratum; old strata's estimates are reused verbatim and only
//!   the newest stratum is sampled, combined by Eq. 13.
//!
//! [`monitor`] drives either over a sequence of update batches (§7.3.2),
//! recording per-batch estimates and cumulative cost.

pub mod monitor;
pub mod reservoir;
pub mod stratified;

use kg_annotate::annotator::Annotator;
use kg_model::update::UpdateBatch;
use kg_stats::PointEstimate;
use rand::RngCore;

/// Common interface of the two incremental evaluators, used by the monitor.
///
/// Incremental evaluators mint fresh cluster ids for every update batch,
/// extending past any materialized snapshot of the KG — so the annotator
/// must be able to label clusters that did not exist at evaluation start.
/// Use the oracle-backed `SimulatedAnnotator`; a `DenseAnnotator` arena is
/// sized for a fixed population and will panic on the appended ids.
pub trait IncrementalEvaluator {
    /// Ingest one update batch, re-annotate as needed, and return the new
    /// estimate of `μ(G + Δ)` meeting the configured MoE target.
    fn apply_update(
        &mut self,
        delta: &UpdateBatch,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> PointEstimate;

    /// Current estimate.
    fn estimate(&self) -> PointEstimate;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

//! Incremental evaluation on evolving KGs (§6).
//!
//! Two strategies, both reusing previous annotations instead of re-running
//! static evaluation from scratch:
//!
//! * [`reservoir::ReservoirEvaluator`] — Algorithm 1: a weighted reservoir
//!   of clusters (Efraimidis–Spirakis keys `u^{1/|Δe|}`) updated in one
//!   pass over the insertion stream; only clusters that *enter* the
//!   reservoir need fresh annotation, bounded by `O(|R|·log(N_j/N_i))`
//!   (Proposition 3).
//! * [`stratified::StratifiedIncremental`] — Algorithm 2: each update batch
//!   is a new stratum; old strata's estimates are reused verbatim and only
//!   the newest stratum is sampled, combined by Eq. 13.
//!
//! [`monitor`] drives either over a sequence of update batches (§7.3.2),
//! recording per-batch estimates and cumulative cost. Churny streams —
//! interleaved insertions, deletions, and revisions — run through the same
//! machinery as [`kg_model::retract::KgEvent`] sequences: retractions
//! tombstone triples in the annotator's live view, decrement PPS weights,
//! and evict fully-dead reservoir members, keeping both annotation engines
//! byte-identical under churn.

pub mod monitor;
pub mod reservoir;
pub mod state;
pub mod stratified;

use kg_annotate::annotator::Annotator;
use kg_model::retract::{KgEvent, Retraction};
use kg_model::update::UpdateBatch;
use kg_stats::PointEstimate;
use rand::RngCore;

/// Common interface of the two incremental evaluators, used by the monitor.
///
/// Incremental evaluators mint fresh cluster ids for every update batch,
/// extending past any snapshot of the KG taken at evaluation start. They
/// are **engine-agnostic**: `apply_update` announces the batch through
/// [`Annotator::extend_population`] before annotating any delta-minted id,
/// so the oracle-backed `SimulatedAnnotator` (a no-op there) and a growable
/// `DenseAnnotator` (which extends its label store and bitmaps in lock-step
/// with the evolving id space — build it with `DenseAnnotator::growable`,
/// or pre-evolve its store and let replays no-op) drive identical
/// evaluations, byte-for-byte.
pub trait IncrementalEvaluator {
    /// Ingest one update batch, re-annotate as needed, and return the new
    /// estimate of `μ(G + Δ)` meeting the configured MoE target.
    ///
    /// Implementations must call `annotator.extend_population(first_id,
    /// delta)` — where `first_id` is the id the batch's first `Δe` cluster
    /// receives — before annotating any of the batch's clusters, and must
    /// not announce the same batch twice.
    fn apply_update(
        &mut self,
        delta: &UpdateBatch,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> PointEstimate;

    /// Absorb a retraction of previously inserted triples and return the
    /// estimate of `μ(G − r)`.
    ///
    /// The retraction addresses triples by **raw** coordinates — `(cluster,
    /// offset-at-insertion)` — exactly as minted by `apply_update`.
    /// Implementations must forward it to [`Annotator::retract`] *before*
    /// re-annotating any affected cluster, so both engines agree on the
    /// live coordinate view, and must correct their own weight/size
    /// bookkeeping (PPS frames, stratum triple counts, reservoir
    /// membership) so subsequent sampling never lands on a dead triple.
    /// Retraction charges no annotation cost by itself — sunk labels stay
    /// paid for — but evaluators may re-annotate shrunken sample members.
    fn apply_retraction(
        &mut self,
        retraction: &Retraction,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> PointEstimate;

    /// Dispatch one [`KgEvent`]: insertions go to [`Self::apply_update`],
    /// retractions to [`Self::apply_retraction`], and a revision applies
    /// its retraction first, then its insertion, returning the
    /// post-insertion estimate (one estimate per event, matching the
    /// monitor's per-event bookkeeping).
    fn apply_event(
        &mut self,
        event: &KgEvent,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> PointEstimate {
        match event {
            KgEvent::Insert(delta) => self.apply_update(delta, annotator, rng),
            KgEvent::Retract(r) => self.apply_retraction(r, annotator, rng),
            KgEvent::Revise(r, delta) => {
                self.apply_retraction(r, annotator, rng);
                self.apply_update(delta, annotator, rng)
            }
        }
    }

    /// Current estimate.
    fn estimate(&self) -> PointEstimate;

    /// Whether the evaluator's sampling design has left its exactness
    /// regime. The reservoir evaluator reports `true` once some appended
    /// cluster satisfies `K·w/W ≥ 1` (its inclusion probability saturates,
    /// biasing the plain-mean estimate — the drift-family effect); the
    /// stratified evaluator's per-stratum frames never saturate this way,
    /// so it keeps the default `false`.
    fn saturated(&self) -> bool {
        false
    }

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

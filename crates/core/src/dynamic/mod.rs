//! Incremental evaluation on evolving KGs (§6).
//!
//! Two strategies, both reusing previous annotations instead of re-running
//! static evaluation from scratch:
//!
//! * [`reservoir::ReservoirEvaluator`] — Algorithm 1: a weighted reservoir
//!   of clusters (Efraimidis–Spirakis keys `u^{1/|Δe|}`) updated in one
//!   pass over the insertion stream; only clusters that *enter* the
//!   reservoir need fresh annotation, bounded by `O(|R|·log(N_j/N_i))`
//!   (Proposition 3).
//! * [`stratified::StratifiedIncremental`] — Algorithm 2: each update batch
//!   is a new stratum; old strata's estimates are reused verbatim and only
//!   the newest stratum is sampled, combined by Eq. 13.
//!
//! [`monitor`] drives either over a sequence of update batches (§7.3.2),
//! recording per-batch estimates and cumulative cost.

pub mod monitor;
pub mod reservoir;
pub mod stratified;

use kg_annotate::annotator::Annotator;
use kg_model::update::UpdateBatch;
use kg_stats::PointEstimate;
use rand::RngCore;

/// Common interface of the two incremental evaluators, used by the monitor.
///
/// Incremental evaluators mint fresh cluster ids for every update batch,
/// extending past any snapshot of the KG taken at evaluation start. They
/// are **engine-agnostic**: `apply_update` announces the batch through
/// [`Annotator::extend_population`] before annotating any delta-minted id,
/// so the oracle-backed `SimulatedAnnotator` (a no-op there) and a growable
/// `DenseAnnotator` (which extends its label store and bitmaps in lock-step
/// with the evolving id space — build it with `DenseAnnotator::growable`,
/// or pre-evolve its store and let replays no-op) drive identical
/// evaluations, byte-for-byte.
pub trait IncrementalEvaluator {
    /// Ingest one update batch, re-annotate as needed, and return the new
    /// estimate of `μ(G + Δ)` meeting the configured MoE target.
    ///
    /// Implementations must call `annotator.extend_population(first_id,
    /// delta)` — where `first_id` is the id the batch's first `Δe` cluster
    /// receives — before annotating any of the batch's clusters, and must
    /// not announce the same batch twice.
    fn apply_update(
        &mut self,
        delta: &UpdateBatch,
        annotator: &mut dyn Annotator,
        rng: &mut dyn RngCore,
    ) -> PointEstimate;

    /// Current estimate.
    fn estimate(&self) -> PointEstimate;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

//! Evaluation reports: what the framework hands back to the user.

use kg_stats::{ConfidenceInterval, PointEstimate};

/// Outcome of an evaluation run.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// Name of the sampling design used.
    pub design: &'static str,
    /// The unbiased accuracy estimate with its variance.
    pub estimate: PointEstimate,
    /// Achieved margin of error at the configured α.
    pub moe: f64,
    /// The `1−α` confidence interval, clamped to `[0, 1]`.
    pub ci: ConfidenceInterval,
    /// Whether the MoE target was met (false only when the population was
    /// exhausted or the unit cap was hit first).
    pub converged: bool,
    /// Independent sampling units drawn (triples for SRS, clusters for
    /// cluster designs).
    pub units: usize,
    /// Distinct triples annotated by humans (`|G'|`).
    pub triples_annotated: usize,
    /// Distinct entities identified by humans (`|E'|`).
    pub entities_identified: usize,
    /// Total simulated human cost, in seconds (Eq. 4).
    pub cost_seconds: f64,
    /// Number of draw-estimate iterations executed.
    pub batches: usize,
}

impl EvaluationReport {
    /// Human cost in hours (the paper's reporting unit).
    pub fn cost_hours(&self) -> f64 {
        self.cost_seconds / 3600.0
    }

    /// One-line summary for logs and examples.
    pub fn summary(&self) -> String {
        format!(
            "{}: accuracy {:.1}% ± {:.1}% ({}% CI), {} units, {} triples / {} entities annotated, {:.2} h{}",
            self.design,
            self.estimate.mean * 100.0,
            self.moe * 100.0,
            (self.ci.level * 100.0).round(),
            self.units,
            self.triples_annotated,
            self.entities_identified,
            self.cost_hours(),
            if self.converged { "" } else { " [NOT CONVERGED]" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(converged: bool) -> EvaluationReport {
        let estimate = PointEstimate::new(0.9, 0.0004, 40).unwrap();
        EvaluationReport {
            design: "TWCS",
            estimate,
            moe: 0.0392,
            ci: estimate.ci(0.05).unwrap().clamped_to_unit(),
            converged,
            units: 40,
            triples_annotated: 180,
            entities_identified: 40,
            cost_seconds: 6300.0,
            batches: 4,
        }
    }

    #[test]
    fn hours_conversion() {
        assert!((report(true).cost_hours() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = report(true).summary();
        assert!(s.contains("TWCS"), "{s}");
        assert!(s.contains("90.0%"), "{s}");
        assert!(s.contains("1.75 h"), "{s}");
        assert!(!s.contains("NOT CONVERGED"));
        assert!(report(false).summary().contains("NOT CONVERGED"));
    }
}

//! The static evaluation loop (Fig. 2).
//!
//! ```text
//! loop:
//!   Sample Collector  – draw one batch via the design
//!   Sample Pool       – annotate (inside the design, via the annotator)
//!   Estimation        – unbiased μ̂ and MoE from accumulated samples
//!   Quality Control   – stop iff n ≥ min_units and MoE ≤ ε
//! ```

use crate::config::EvalConfig;
use crate::report::EvaluationReport;
use kg_annotate::annotator::Annotator;
use kg_sampling::design::StaticDesign;
use rand::RngCore;

/// Run the iterative loop until the MoE target is met, the population is
/// exhausted, or the unit cap is hit.
pub fn run_static(
    design: &mut dyn StaticDesign,
    annotator: &mut dyn Annotator,
    config: &EvalConfig,
    rng: &mut dyn RngCore,
) -> EvaluationReport {
    let mut batches = 0usize;
    let mut converged = false;
    loop {
        let remaining_cap = config.max_units.saturating_sub(design.units());
        if remaining_cap == 0 {
            break;
        }
        let drawn = design.draw(rng, annotator, config.batch_size.min(remaining_cap));
        batches += 1;
        if drawn == 0 {
            // Population exhausted: a census has zero sampling error, so
            // the estimate is exact regardless of what the plug-in
            // variance reports.
            converged = true;
            break;
        }
        if design.units() >= config.min_units && moe_ok(design, config) {
            converged = true;
            break;
        }
    }
    let estimate = design.estimate();
    let moe = estimate
        .moe(config.alpha)
        .expect("alpha validated by config");
    EvaluationReport {
        design: design.name(),
        estimate,
        moe,
        ci: estimate
            .ci(config.alpha)
            .expect("alpha validated by config")
            .clamped_to_unit(),
        converged,
        units: design.units(),
        triples_annotated: annotator.triples_annotated(),
        entities_identified: annotator.entities_identified(),
        cost_seconds: annotator.seconds(),
        batches,
    }
}

fn moe_ok(design: &dyn StaticDesign, config: &EvalConfig) -> bool {
    design
        .estimate()
        .moe(config.alpha)
        .map(|moe| moe <= config.target_moe)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::{true_accuracy, RemOracle};
    use kg_model::implicit::ImplicitKg;
    use kg_sampling::srs::SrsDesign;
    use kg_sampling::twcs::TwcsDesign;
    use kg_sampling::PopulationIndex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn kg() -> ImplicitKg {
        ImplicitKg::new((0..2000).map(|i| 1 + (i % 12)).collect()).unwrap()
    }

    #[test]
    fn loop_stops_at_moe_target() {
        let kg = kg();
        let oracle = RemOracle::new(0.9, 4);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let mut design = TwcsDesign::new(idx, 5);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let config = EvalConfig::default();
        let report = run_static(&mut design, &mut annotator, &config, &mut rng);
        assert!(report.converged, "{}", report.summary());
        assert!(report.moe <= 0.05);
        assert!(report.units >= config.min_units);
        let truth = true_accuracy(&kg, &oracle);
        assert!(
            (report.estimate.mean - truth).abs() < 0.08,
            "estimate {} vs truth {truth}",
            report.estimate.mean
        );
    }

    #[test]
    fn census_of_tiny_population_converges_exactly() {
        let kg = ImplicitKg::new(vec![1; 40]).unwrap();
        let oracle = RemOracle::new(1.0, 9);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(2);
        let mut design = SrsDesign::new(idx);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let report = run_static(
            &mut design,
            &mut annotator,
            &EvalConfig::default(),
            &mut rng,
        );
        // Perfectly accurate KG: p̂=1, plug-in variance 0 → MoE 0 once the
        // sample exists; full census at the latest.
        assert!(report.converged);
        assert!((report.estimate.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unit_cap_prevents_runaway() {
        let kg = kg();
        let oracle = RemOracle::new(0.5, 8); // worst-case variance
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        let mut design = TwcsDesign::new(idx, 5);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        // Unreachable target with a tiny cap.
        let config = EvalConfig::default()
            .with_target_moe(0.0001)
            .with_max_units(50);
        let report = run_static(&mut design, &mut annotator, &config, &mut rng);
        assert!(!report.converged);
        assert_eq!(report.units, 50);
    }

    #[test]
    fn min_units_enforced_even_when_moe_tiny() {
        // A perfectly accurate KG reaches MoE 0 after the first batch, but
        // the CLT rule still demands min_units draws.
        let kg = ImplicitKg::new(vec![2; 500]).unwrap();
        let oracle = RemOracle::new(1.0, 5);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(4);
        let mut design = TwcsDesign::new(idx, 5);
        let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
        let config = EvalConfig::default().with_min_units(30);
        let report = run_static(&mut design, &mut annotator, &config, &mut rng);
        assert!(report.units >= 30, "units {}", report.units);
        assert!(report.converged);
    }

    #[test]
    fn moe_guarantee_holds_across_replications() {
        // |μ̂ − μ| ≤ ε should hold in ≥ ~95% of runs (allowing CLT slack).
        let kg = kg();
        let oracle = RemOracle::new(0.8, 6);
        let truth = true_accuracy(&kg, &oracle);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let reps = 200;
        let mut hits = 0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut design = TwcsDesign::new(idx.clone(), 5);
            let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
            let report = run_static(
                &mut design,
                &mut annotator,
                &EvalConfig::default(),
                &mut rng,
            );
            if (report.estimate.mean - truth).abs() <= 0.05 {
                hits += 1;
            }
        }
        let coverage = hits as f64 / reps as f64;
        assert!(coverage >= 0.90, "coverage {coverage}");
    }
}

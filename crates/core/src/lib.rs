//! # kg-eval — the iterative KG accuracy evaluation framework
//!
//! The paper's primary contribution (§4, Fig. 2): an iterative
//! sample–annotate–estimate–check loop that stops as soon as the estimate's
//! margin of error drops below the user's threshold ε at confidence level
//! 1−α — no oversampling, no wasted human annotations, always an unbiased
//! estimate with a statistical guarantee.
//!
//! * [`config::EvalConfig`] — ε, α, batch size, and the CLT minimum-sample
//!   rule of thumb (n > 30).
//! * [`static_eval::run_static`] — the Fig. 2 loop over any
//!   [`kg_sampling::design::StaticDesign`].
//! * [`framework::Evaluator`] — one-call façade: pick a design, hand it a
//!   population and an oracle, get an [`report::EvaluationReport`].
//! * [`executor::TrialExecutor`] — the parallel repeated-trial runtime:
//!   shards seeded trials across workers with counter-based RNG streams
//!   and a fixed-shape reduction, so aggregated mean/std are **bitwise
//!   identical at any worker count**; every evaluator's trial fan-out
//!   (static, granular, RS/SS replays, the benchmark harnesses) runs on
//!   it.
//! * [`sharded`] — intra-trial sharded replay: one trial's cluster walk
//!   partitioned into fixed shards with counter-based shard substreams and
//!   a fixed-shape merge, bitwise identical at any shard-worker count
//!   (`KG_EVAL_SHARDS`).
//! * [`dynamic`] — evolving-KG evaluation (§6): reservoir incremental
//!   evaluation (Algorithm 1) and stratified incremental evaluation
//!   (Algorithm 2), plus a monitor driving either over a sequence of
//!   update batches (§7.3.2).
//! * [`granular`] — per-predicate accuracy evaluation with a shared
//!   annotator (the paper's §9 future-work direction).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod dynamic;
pub mod executor;
pub mod framework;
pub mod granular;
pub mod report;
pub mod session;
pub mod sharded;
pub mod spill;
pub mod static_eval;

pub use config::EvalConfig;
pub use executor::TrialExecutor;
pub use framework::Evaluator;
pub use report::EvaluationReport;
pub use session::{EstimateReport, SessionRegistry, SessionSpec};
pub use sharded::{ShardDesign, ShardReplayReport, ShardedReplay};
pub use spill::CheckpointStore;

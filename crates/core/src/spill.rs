//! Disk-backed spill store for session checkpoints.
//!
//! A [`CheckpointStore`] is a directory of `KGSN` records, one file per
//! session id (`session-<id>.kgsn`). It is the persistence substrate of
//! the registry's fault-tolerance features:
//!
//! * **TTL/LRU eviction** — idle sessions are checkpointed here and
//!   dropped from memory; the next request revives them transparently.
//! * **Graceful drain** — shutdown checkpoints every live session so a
//!   restarted process recovers the full tenant set.
//! * **Write-through** — under [`crate::session::LifecyclePolicy`]
//!   `write_through`, every mutating request persists before returning,
//!   so an abrupt kill between requests loses nothing.
//!
//! The store itself is deliberately dumb: it moves opaque bytes. All
//! structural validation happens in the `KGSN` decoder when a record is
//! revived, so a torn or corrupted file surfaces as a typed
//! [`kg_stats::codec::CodecError`] — never a panic, never a partial
//! session. Writes go through [`kg_stats::atomicfile::write_atomic`]
//! (temp + rename), so a crash mid-save leaves the previous complete
//! record in place.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Typed failures of the spill layer. Decode failures are *not* here —
/// the store returns raw bytes and the session decoder owns structural
/// validation.
#[derive(Debug)]
pub enum SpillError {
    /// No spill file for the requested session id.
    Missing(u64),
    /// Filesystem failure (permissions, disk full, vanished directory).
    Io(io::Error),
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Missing(id) => write!(f, "no spill record for session {id}"),
            SpillError::Io(e) => write!(f, "spill io: {e}"),
        }
    }
}

impl std::error::Error for SpillError {}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> Self {
        SpillError::Io(e)
    }
}

/// A directory of per-session `KGSN` spill files with atomic writes.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if necessary) a spill directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a session's spill file.
    pub fn path_for(&self, id: u64) -> PathBuf {
        self.dir.join(format!("session-{id}.kgsn"))
    }

    /// Persist a session's checkpoint bytes atomically.
    pub fn save(&self, id: u64, bytes: &[u8]) -> io::Result<()> {
        kg_stats::atomicfile::write_atomic(self.path_for(id), bytes)
    }

    /// Load a session's checkpoint bytes.
    pub fn load(&self, id: u64) -> Result<Vec<u8>, SpillError> {
        match std::fs::read(self.path_for(id)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err(SpillError::Missing(id)),
            Err(e) => Err(SpillError::Io(e)),
        }
    }

    /// Whether a spill record exists for `id`.
    pub fn contains(&self, id: u64) -> bool {
        self.path_for(id).is_file()
    }

    /// Delete a session's spill record, returning whether it existed.
    pub fn remove(&self, id: u64) -> io::Result<bool> {
        match std::fs::remove_file(self.path_for(id)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Persist the id floor: the lowest session id a registry over this
    /// store may mint next. Written before a freshly minted id is handed
    /// out, so ids stay unique across crash/restart even when the spill
    /// records that would witness them are torn or deleted — a stale
    /// client handle must never alias a different tenant's session.
    pub fn record_id_floor(&self, floor: u64) -> io::Result<()> {
        kg_stats::atomicfile::write_atomic(self.dir.join("next-id"), floor.to_string().as_bytes())
    }

    /// The persisted id floor, if any. A missing or unparseable file is
    /// `None` — callers combine the floor with the scanned record ids, so
    /// absence degrades to the legacy scan-only behaviour.
    pub fn id_floor(&self) -> Option<u64> {
        let bytes = std::fs::read(self.dir.join("next-id")).ok()?;
        std::str::from_utf8(&bytes).ok()?.trim().parse().ok()
    }

    /// Session ids with a spill record, ascending. Ignores files that do
    /// not match the `session-<id>.kgsn` shape (editor droppings, temp
    /// files from an interrupted save).
    pub fn ids(&self) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("session-")
                .and_then(|s| s.strip_suffix(".kgsn"))
            else {
                continue;
            };
            if let Ok(id) = stem.parse::<u64>() {
                out.push(id);
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kg-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_remove_round_trip() {
        let dir = scratch("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.ids().unwrap().is_empty());
        store.save(7, b"KGSN-payload").unwrap();
        store.save(3, b"other").unwrap();
        assert_eq!(store.ids().unwrap(), vec![3, 7]);
        assert!(store.contains(7));
        assert_eq!(store.load(7).unwrap(), b"KGSN-payload");
        // Overwrite replaces in place.
        store.save(7, b"v2").unwrap();
        assert_eq!(store.load(7).unwrap(), b"v2");
        assert!(store.remove(7).unwrap());
        assert!(!store.remove(7).unwrap());
        assert!(matches!(store.load(7), Err(SpillError::Missing(7))));
        assert_eq!(store.ids().unwrap(), vec![3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn id_floor_round_trips_and_tolerates_garbage() {
        let dir = scratch("idfloor");
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.id_floor(), None);
        store.record_id_floor(42).unwrap();
        assert_eq!(store.id_floor(), Some(42));
        store.record_id_floor(1000).unwrap();
        assert_eq!(store.id_floor(), Some(1000));
        // The floor file is not a session record.
        assert!(store.ids().unwrap().is_empty());
        // A torn/garbage floor degrades to absent, never an error.
        std::fs::write(dir.join("next-id"), b"\xFF\xFEnot a number").unwrap();
        assert_eq!(store.id_floor(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ids_ignore_foreign_and_temp_files() {
        let dir = scratch("foreign");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(12, b"x").unwrap();
        std::fs::write(dir.join("session-9.kgsn.1234.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        std::fs::write(dir.join("session-bogus.kgsn"), b"hi").unwrap();
        assert_eq!(store.ids().unwrap(), vec![12]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The parallel trial runtime: thread-count-invariant repeated-trial
//! execution for every evaluator in the workspace.
//!
//! Experiments repeat each configuration over many seeded trials and
//! report mean ± standard deviation (§7.1.5). The old `kg-bench` runner
//! spread trials over scoped threads and merged per-thread accumulators in
//! chunk order, so the *reduction shape* — and therefore the low bits of
//! the reported mean/std — depended on how many cores the host happened to
//! have, silently contradicting its own "independent of thread count"
//! contract. [`TrialExecutor`] makes that contract real:
//!
//! * **Counter-based per-trial RNG streams** — trial `i` receives the seed
//!   [`trial_seed`]`(base_seed, i)`; what a trial computes depends only on
//!   `(base_seed, i)`, never on which worker ran it or when. (`StdRng`
//!   expands the `u64` through SplitMix64, so adjacent counters yield
//!   decorrelated streams.)
//! * **Work-stealing sharding** — workers claim trial indices from an
//!   atomic cursor, so a straggler trial never idles the other cores; the
//!   schedule is free to be nondeterministic because no result depends on
//!   it.
//! * **Fixed-shape reduction** — per-trial metric vectors are merged with
//!   a binary tree over the *trial index* whose shape depends only on the
//!   trial count. Aggregation is therefore **bitwise identical** at 1, 2,
//!   4, or N workers (regression-tested at forced worker counts 1 vs 7).
//! * **Leased per-worker state** — [`TrialExecutor::run_with`] gives every
//!   worker one long-lived context (e.g. a checked-out
//!   `kg_annotate::lease::DenseArenaPool` arena) reused across all trials
//!   the worker claims, so arenas stop being rebuilt per trial.
//!
//! Worker-count resolution: an explicit [`TrialExecutor::with_workers`]
//! override wins, else the `KG_EVAL_WORKERS` environment variable (a
//! positive integer; anything else is ignored), else
//! `std::thread::available_parallelism()`. Because results are invariant
//! to the resolved count, capping workers is purely an operational choice.

use kg_stats::RunningMoments;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable capping the default worker count (a positive
/// integer). Ignored when [`TrialExecutor::with_workers`] is set.
pub const ENV_WORKERS: &str = "KG_EVAL_WORKERS";

/// Environment variable capping the default **intra-trial shard worker**
/// count used by [`sharded replay`](crate::sharded) (a positive integer).
/// Ignored when `ShardedReplay::with_shard_workers` is set. Because the
/// shard *partition* is fixed and only the claiming thread count varies,
/// results are bitwise invariant to this setting.
pub const ENV_SHARDS: &str = "KG_EVAL_SHARDS";

/// The seed handed to trial `trial` of a run with `base_seed`: the plain
/// counter stream `base_seed + trial` (wrapping). Every consumer builds
/// its generator via `StdRng::seed_from_u64`, which expands the counter
/// through SplitMix64 — adjacent counters produce decorrelated streams.
///
/// This is a **stability contract**: committed artifacts and the
/// hash/dense equivalence suites replay exact seed sequences, so the
/// derivation must not change between releases.
#[inline]
pub fn trial_seed(base_seed: u64, trial: u64) -> u64 {
    base_seed.wrapping_add(trial)
}

/// The seed handed to shard `shard` of a sharded replay of a trial seeded
/// with `trial_seed`: the trial counter stream extended with a shard
/// dimension. Shard 0 reproduces `trial_seed` exactly, and higher shards
/// stride by the 64-bit golden ratio before XOR so that shard `s` of trial
/// `t` never collides with shard 0 of trial `t + s` (a plain additive
/// counter would). As with [`trial_seed`], consumers expand the value
/// through `StdRng::seed_from_u64` (SplitMix64), decorrelating adjacent
/// substreams.
///
/// Like [`trial_seed`], this is a **stability contract**: the sharded
/// replay path's committed artifacts and shard-count invariance suites
/// replay exact substream sequences, so the derivation must not change
/// between releases.
#[inline]
pub fn shard_seed(trial_seed: u64, shard: u64) -> u64 {
    trial_seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Thread-count-invariant executor for repeated seeded trials.
///
/// See the [module docs](self) for the determinism guarantee. The
/// executor is a tiny value type — hold one per harness, or build one
/// ad hoc per call; all state lives on the stack of [`TrialExecutor::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TrialExecutor {
    workers: Option<NonZeroUsize>,
}

impl TrialExecutor {
    /// Executor with the default worker resolution (`KG_EVAL_WORKERS`,
    /// else available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Force an exact worker count (≥ 1), overriding the environment.
    /// Results are bitwise identical for every choice; this exists for
    /// regression tests and scaling benchmarks.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(NonZeroUsize::new(workers).expect("worker count must be at least 1"));
        self
    }

    /// The worker count this executor resolves to right now (before the
    /// per-run cap at the trial count).
    pub fn workers(&self) -> usize {
        if let Some(n) = self.workers {
            return n.get();
        }
        if let Ok(v) = std::env::var(ENV_WORKERS) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Run `trials` seeded replications of `f`, each returning a vector of
    /// exactly `metrics` values; returns one [`RunningMoments`] per metric
    /// position, aggregated in a fixed shape (bitwise identical at any
    /// worker count).
    ///
    /// Edge cases are total: `trials == 0` returns empty accumulators
    /// (count 0, mean 0.0, std 0.0 — no NaN) without spawning a thread,
    /// and `trials == 1` runs inline on the calling thread.
    ///
    /// # Panics
    ///
    /// If `f` returns a vector whose length differs from `metrics`.
    pub fn run<F>(&self, trials: u64, base_seed: u64, metrics: usize, f: F) -> Vec<RunningMoments>
    where
        F: Fn(u64) -> Vec<f64> + Sync,
    {
        self.run_with(trials, base_seed, metrics, || (), |(), seed| f(seed))
    }

    /// [`TrialExecutor::run`] with one long-lived context per worker:
    /// `init` runs once on each worker thread (and once on the calling
    /// thread in the sequential path), and `f` receives that context for
    /// every trial the worker claims. Use it to lease expensive reusable
    /// state — a dense annotation arena, a scratch buffer — across trials
    /// instead of rebuilding it per trial.
    ///
    /// The determinism contract requires `f` to be a pure function of
    /// `(context-as-initialized, seed)`: reset any carried state at the
    /// top of the trial (e.g. `DenseAnnotator::reset`), because which
    /// trials share a context depends on the schedule.
    pub fn run_with<C, I, F>(
        &self,
        trials: u64,
        base_seed: u64,
        metrics: usize,
        init: I,
        f: F,
    ) -> Vec<RunningMoments>
    where
        I: Fn() -> C + Sync,
        F: Fn(&mut C, u64) -> Vec<f64> + Sync,
    {
        if trials == 0 {
            return vec![RunningMoments::new(); metrics];
        }
        let workers = self
            .workers()
            .min(usize::try_from(trials).unwrap_or(usize::MAX));
        let outputs: Vec<Vec<f64>> = if workers <= 1 {
            let mut ctx = init();
            (0..trials)
                .map(|t| checked(f(&mut ctx, trial_seed(base_seed, t)), metrics, t))
                .collect()
        } else {
            let cursor = AtomicU64::new(0);
            let parts: Vec<Vec<(u64, Vec<f64>)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let (cursor, init, f) = (&cursor, &init, &f);
                        scope.spawn(move || {
                            let mut ctx = init();
                            let mut done = Vec::new();
                            loop {
                                let t = cursor.fetch_add(1, Ordering::Relaxed);
                                if t >= trials {
                                    break;
                                }
                                let out =
                                    checked(f(&mut ctx, trial_seed(base_seed, t)), metrics, t);
                                done.push((t, out));
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            });
            // Reassemble in trial order; the schedule's nondeterminism
            // ends here.
            let mut slots: Vec<Option<Vec<f64>>> = Vec::new();
            slots.resize_with(trials as usize, || None);
            for (t, out) in parts.into_iter().flatten() {
                slots[t as usize] = Some(out);
            }
            slots
                .into_iter()
                .enumerate()
                .map(|(t, s)| s.unwrap_or_else(|| panic!("trial {t} was never executed")))
                .collect()
        };
        tree_reduce(outputs, metrics)
    }
}

/// Run `trials` seeded replications of `f` on a default-resolved executor
/// — the drop-in replacement for the old `kg_bench::trials::run_trials`,
/// now thread-count-invariant.
pub fn run_trials<F>(trials: u64, base_seed: u64, metrics: usize, f: F) -> Vec<RunningMoments>
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    TrialExecutor::new().run(trials, base_seed, metrics, f)
}

#[inline]
fn checked(out: Vec<f64>, metrics: usize, trial: u64) -> Vec<f64> {
    assert_eq!(
        out.len(),
        metrics,
        "trial {trial} returned {} metrics, expected {metrics}",
        out.len()
    );
    out
}

/// Merge per-trial metric vectors with a binary tree over the trial index.
/// The shape depends only on the leaf count, so the float result is a pure
/// function of the trial outputs — pairwise merging also keeps the Chan
/// et al. combination numerically tighter than a long sequential fold.
fn tree_reduce(outputs: Vec<Vec<f64>>, metrics: usize) -> Vec<RunningMoments> {
    if outputs.is_empty() {
        return vec![RunningMoments::new(); metrics];
    }
    let mut level: Vec<Vec<RunningMoments>> = outputs
        .into_iter()
        .map(|vals| {
            vals.into_iter()
                .map(|v| RunningMoments::from_slice(&[v]))
                .collect()
        })
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut nodes = level.into_iter();
        while let Some(mut left) = nodes.next() {
            if let Some(right) = nodes.next() {
                for (l, r) in left.iter_mut().zip(&right) {
                    l.merge(r);
                }
            }
            next.push(left);
        }
        level = next;
    }
    level.pop().expect("non-empty level")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(stats: &[RunningMoments]) -> Vec<(u64, u64, u64)> {
        stats
            .iter()
            .map(|m| (m.mean().to_bits(), m.sample_std().to_bits(), m.count()))
            .collect()
    }

    #[test]
    fn aggregates_across_trials_deterministically() {
        let f = |seed: u64| vec![seed as f64, 2.0 * seed as f64];
        let a = run_trials(100, 10, 2, f);
        let b = run_trials(100, 10, 2, f);
        assert_eq!(a[0].count(), 100);
        assert_eq!(bits(&a), bits(&b));
        // Seeds 10..110 → mean 59.5, second metric doubled.
        assert!((a[0].mean() - 59.5).abs() < 1e-9);
        assert!((a[1].mean() - 119.0).abs() < 1e-9);
    }

    #[test]
    fn bitwise_invariant_across_worker_counts() {
        // A metric with enough float texture that a reduction-shape change
        // would flip low bits: irrational-ish values at varied scales.
        let f = |seed: u64| {
            let x = (seed as f64 + 0.5).sqrt() * 1e3;
            vec![x.sin() * 1e6, 1.0 / x, x]
        };
        let reference = TrialExecutor::new().with_workers(1).run(257, 42, 3, f);
        for workers in [2, 3, 4, 7, 16, 64] {
            let got = TrialExecutor::new()
                .with_workers(workers)
                .run(257, 42, 3, f);
            assert_eq!(bits(&reference), bits(&got), "workers = {workers}");
        }
    }

    #[test]
    fn zero_trials_is_nan_free_and_spawnless() {
        let out = TrialExecutor::new()
            .with_workers(4)
            .run(0, 9, 3, |_| panic!("must not be called"));
        assert_eq!(out.len(), 3);
        for m in &out {
            assert_eq!(m.count(), 0);
            assert!(m.mean().is_finite());
            assert!(m.sample_std().is_finite());
            assert_eq!(m.mean(), 0.0);
            assert_eq!(m.sample_std(), 0.0);
        }
    }

    #[test]
    fn single_trial_runs_inline_and_is_nan_free() {
        // A forced multi-worker executor still caps at the trial count,
        // so a single trial runs on the calling thread.
        let caller = std::thread::current().id();
        let out = TrialExecutor::new().with_workers(8).run(1, 7, 1, |s| {
            assert_eq!(std::thread::current().id(), caller);
            vec![s as f64]
        });
        assert_eq!(out[0].count(), 1);
        assert_eq!(out[0].mean(), 7.0);
        assert_eq!(out[0].sample_std(), 0.0);
        assert!(out[0].sample_std().is_finite());
    }

    #[test]
    #[should_panic(expected = "expected 3")]
    fn wrong_metric_arity_panics() {
        TrialExecutor::new()
            .with_workers(1)
            .run(2, 0, 3, |_| vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn wrong_metric_arity_panics_across_threads_too() {
        TrialExecutor::new()
            .with_workers(2)
            .run(8, 0, 2, |_| vec![1.0]);
    }

    #[test]
    fn per_worker_context_is_reused_and_results_invariant() {
        // Context counts how many trials it served; the metric must not
        // depend on that (simulating an arena that is reset per trial).
        let run = |workers| {
            TrialExecutor::new().with_workers(workers).run_with(
                64,
                5,
                2,
                || 0u64,
                |served, seed| {
                    *served += 1;
                    assert!(*served <= 64, "context leaked across workers");
                    vec![seed as f64, (seed as f64).ln_1p()]
                },
            )
        };
        assert_eq!(bits(&run(1)), bits(&run(5)));
    }

    #[test]
    fn env_var_caps_default_workers() {
        // Other tests never rely on the *default* resolution, and results
        // are invariant to it anyway — only this test touches the env.
        std::env::set_var(ENV_WORKERS, "3");
        assert_eq!(TrialExecutor::new().workers(), 3);
        std::env::set_var(ENV_WORKERS, "not a number");
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(TrialExecutor::new().workers(), fallback);
        std::env::set_var(ENV_WORKERS, "0");
        assert_eq!(TrialExecutor::new().workers(), fallback);
        std::env::set_var(ENV_WORKERS, "5");
        // An explicit override beats the environment.
        assert_eq!(TrialExecutor::new().with_workers(2).workers(), 2);
        std::env::remove_var(ENV_WORKERS);
        assert_eq!(TrialExecutor::new().workers(), fallback);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_workers_rejected() {
        let _ = TrialExecutor::new().with_workers(0);
    }

    #[test]
    fn counter_seed_contract() {
        assert_eq!(trial_seed(10, 0), 10);
        assert_eq!(trial_seed(10, 5), 15);
        assert_eq!(trial_seed(u64::MAX, 2), 1); // wraps
    }

    #[test]
    fn shard_seed_contract() {
        // Shard 0 is the unsharded trial stream.
        assert_eq!(shard_seed(12345, 0), 12345);
        // Exact golden-ratio stride values — the derivation is frozen.
        assert_eq!(shard_seed(0, 1), 0x9E37_79B9_7F4A_7C15);
        assert_eq!(
            shard_seed(7, 2),
            7 ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(2)
        );
        // No cross-trial collision of the kind an additive counter has:
        // shard s of trial t must differ from shard 0 of trial t + s.
        for t in 0..32u64 {
            for s in 1..8u64 {
                assert_ne!(
                    shard_seed(trial_seed(99, t), s),
                    shard_seed(trial_seed(99, t + s), 0),
                    "t={t} s={s}"
                );
            }
        }
    }

    #[test]
    fn tree_reduce_matches_flat_accumulation_statistically() {
        // Same observations, two shapes: values agree to fp tolerance
        // (bitwise equality is only promised across *worker counts*, which
        // share the shape — not against a sequential fold).
        let xs: Vec<f64> = (0..321).map(|i| (i as f64).cos() * 7.0 + 3.0).collect();
        let flat = RunningMoments::from_slice(&xs);
        let tree = run_trials(321, 0, 1, |s| vec![(s as f64).cos() * 7.0 + 3.0]);
        assert_eq!(tree[0].count(), flat.count());
        assert!((tree[0].mean() - flat.mean()).abs() < 1e-12);
        assert!((tree[0].sample_variance() - flat.sample_variance()).abs() < 1e-10);
    }
}

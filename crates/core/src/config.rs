//! Evaluation configuration: the user-facing statistical contract.

/// Parameters of the quality-control loop (Fig. 2, step 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Significance level α; the confidence level is `1 − α`. Default 0.05.
    pub alpha: f64,
    /// Target margin of error ε. The loop stops when `MoE ≤ ε`.
    /// Default 0.05 (the paper's default across §7).
    pub target_moe: f64,
    /// Sampling units drawn per iteration. Default 5 — small batches keep
    /// the stop-at-MoE rule from overshooting on expensive cluster units.
    pub batch_size: usize,
    /// Minimum units before the stop rule may fire — the CLT rule of thumb
    /// `n > 30` (§2.2 footnote). Plug-in variance estimates are unreliable
    /// below this, so stopping earlier forfeits the MoE guarantee (the
    /// paper's own YAGO runs stop at 20–30 triples and pay for it with
    /// empirical rather than analytic intervals). Default 30.
    pub min_units: usize,
    /// Hard cap on drawn units, guarding against configurations whose MoE
    /// target is unreachable (e.g. ε ≈ 0). Default 1,000,000.
    pub max_units: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            alpha: 0.05,
            target_moe: 0.05,
            batch_size: 5,
            min_units: 30,
            max_units: 1_000_000,
        }
    }
}

impl EvalConfig {
    /// Config with a different confidence level `1 − alpha`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        self.alpha = alpha;
        self
    }

    /// Config with a different MoE target.
    pub fn with_target_moe(mut self, eps: f64) -> Self {
        assert!(eps > 0.0, "target MoE must be positive");
        self.target_moe = eps;
        self
    }

    /// Config with a different per-iteration batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be at least 1");
        self.batch_size = batch;
        self
    }

    /// Config with a different unit cap.
    pub fn with_max_units(mut self, cap: usize) -> Self {
        self.max_units = cap;
        self
    }

    /// Config with a different minimum unit count before stopping.
    pub fn with_min_units(mut self, min: usize) -> Self {
        self.min_units = min;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = EvalConfig::default();
        assert_eq!(c.alpha, 0.05);
        assert_eq!(c.target_moe, 0.05);
        assert_eq!(c.min_units, 30);
    }

    #[test]
    fn builders_update_fields() {
        let c = EvalConfig::default()
            .with_alpha(0.01)
            .with_target_moe(0.03)
            .with_batch_size(5)
            .with_max_units(99);
        assert_eq!(c.alpha, 0.01);
        assert_eq!(c.target_moe, 0.03);
        assert_eq!(c.batch_size, 5);
        assert_eq!(c.max_units, 99);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_validated() {
        EvalConfig::default().with_alpha(1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn moe_validated() {
        EvalConfig::default().with_target_moe(0.0);
    }
}

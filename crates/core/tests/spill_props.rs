//! Property suite for the session spill path (`CheckpointStore` +
//! `SessionRegistry` revival), over randomized specs and event streams:
//!
//! 1. **Spill → revive → spill is byte-stable** — a session checkpointed
//!    to disk, recovered in a fresh registry, and checkpointed again
//!    reproduces the identical `KGSN` byte string, and its served
//!    estimate matches the never-spilled original bit for bit.
//! 2. **Hostile spill records fail typed and contained** — truncations,
//!    bit flips, version/magic skew of the on-disk record surface as
//!    typed errors (never a panic), the poisoned session is dropped, and
//!    co-tenant sessions are untouched.
//! 3. **The store moves arbitrary bytes faithfully** — save/load/ids
//!    round-trip any payload (the atomic-write layer is content-blind).

use kg_eval::dynamic::reservoir::OfferMode;
use kg_eval::session::{
    Engine, EvaluatorKind, LifecyclePolicy, SessionError, SessionRegistry, SessionSpec,
};
use kg_eval::{CheckpointStore, EvalConfig, TrialExecutor};
use kg_model::retract::{KgEvent, Retraction};
use kg_model::update::UpdateBatch;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-case scratch directory (proptest runs cases in sequence, but a
/// shared dir would alias session ids across cases).
fn scratch() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("kg-spill-props-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn registry_with_store(dir: &std::path::Path) -> SessionRegistry {
    SessionRegistry::with_lifecycle(
        TrialExecutor::new().with_workers(2),
        LifecyclePolicy::default(),
        CheckpointStore::open(dir).expect("open store"),
    )
}

fn spec_from(base_sizes: Vec<u32>, seed: u64, stratified: bool) -> SessionSpec {
    SessionSpec {
        kind: if stratified {
            EvaluatorKind::Stratified
        } else {
            EvaluatorKind::Reservoir {
                capacity: 1 + (seed % 32) as usize,
            }
        },
        engine: Engine::Hash,
        offer_mode: OfferMode::Batched,
        m: 4,
        config: EvalConfig::default(),
        seed,
        oracle_accuracy: 0.85,
        oracle_seed: seed.rotate_left(17),
        base_sizes,
    }
}

/// Turn the raw op stream into valid events: inserts pass through;
/// retract hints burn one not-yet-dead offset of the hinted base
/// cluster, skipping exhausted clusters (retractions must never
/// double-kill or run past a cluster's size).
fn events_from(base_sizes: &[u32], ops: &[(bool, u8, Vec<u32>)]) -> (Vec<KgEvent>, Vec<u32>) {
    let mut burned = vec![0u32; base_sizes.len()];
    let mut events = Vec::new();
    for (is_insert, cluster_hint, ins_sizes) in ops {
        if *is_insert && !ins_sizes.is_empty() {
            events.push(KgEvent::Insert(
                UpdateBatch::from_sizes(ins_sizes.clone()).expect("positive sizes"),
            ));
        } else {
            let c = usize::from(*cluster_hint) % base_sizes.len();
            if burned[c] < base_sizes[c] {
                events.push(KgEvent::Retract(
                    Retraction::new(vec![(c as u32, vec![burned[c]])]).expect("valid retraction"),
                ));
                burned[c] += 1;
            }
        }
    }
    (events, burned)
}

fn bits(registry: &SessionRegistry, id: u64) -> (u64, u64, usize, u64) {
    let r = registry.estimate(id).expect("estimate");
    (
        r.mean.to_bits(),
        r.var_of_mean.to_bits(),
        r.units,
        r.events_applied,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spill_revive_spill_is_byte_stable(
        base_sizes in prop::collection::vec(1u32..6, 4..32),
        ops in prop::collection::vec(
            (any::<bool>(), any::<u8>(), prop::collection::vec(1u32..5, 1..12)),
            0..10,
        ),
        seed in any::<u64>(),
        stratified in any::<bool>(),
    ) {
        let spec = spec_from(base_sizes.clone(), seed, stratified);
        let (events, _) = events_from(&base_sizes, &ops);

        let origin = SessionRegistry::new();
        let id = origin.register(spec).expect("register");
        for event in &events {
            origin.apply_events(id, std::slice::from_ref(event)).expect("apply");
        }
        let want_bits = bits(&origin, id);
        let bytes = origin.checkpoint(id).expect("checkpoint");

        // Plant the record as a spill file and revive it elsewhere.
        let dir = scratch();
        let revived = registry_with_store(&dir);
        revived.store().unwrap().save(id, &bytes).expect("save spill");
        prop_assert_eq!(revived.recover_from_store().expect("recover"), 1);
        prop_assert!(!revived.is_live(id), "recovered sessions start spilled");
        prop_assert_eq!(bits(&revived, id), want_bits);
        prop_assert!(revived.is_live(id), "first touch revives");

        // Byte stability: revive → checkpoint reproduces the record.
        prop_assert_eq!(revived.checkpoint(id).expect("checkpoint"), bytes.clone());

        // And a second spill cycle (explicit evict) stays stable on disk.
        prop_assert!(revived.evict(id).expect("evict"));
        prop_assert_eq!(
            revived.store().unwrap().load(id).expect("load"),
            bytes.clone()
        );
        prop_assert_eq!(bits(&revived, id), want_bits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_spill_records_fail_typed_and_leave_cotenants_alone(
        base_sizes in prop::collection::vec(1u32..6, 4..24),
        ops in prop::collection::vec(
            (any::<bool>(), any::<u8>(), prop::collection::vec(1u32..5, 1..8)),
            0..6,
        ),
        seed in any::<u64>(),
        cut_hint in any::<u64>(),
        flip_hint in any::<u64>(),
    ) {
        let dir = scratch();
        let registry = registry_with_store(&dir);
        let victim = registry
            .register(spec_from(base_sizes.clone(), seed, false))
            .expect("register victim");
        let cotenant = registry
            .register(spec_from(base_sizes.clone(), seed ^ 0x5A5A, true))
            .expect("register cotenant");
        let (events, _) = events_from(&base_sizes, &ops);
        for event in &events {
            registry.apply_events(victim, std::slice::from_ref(event)).expect("apply");
        }
        let cotenant_bits = bits(&registry, cotenant);
        prop_assert!(registry.evict(victim).expect("evict"));
        let store_path = registry.store().unwrap().path_for(victim);
        let full = std::fs::read(&store_path).expect("read spill");

        // Truncate at a random cut: typed codec error, session dropped,
        // spill file cleaned up.
        let cut = (cut_hint as usize) % full.len();
        std::fs::write(&store_path, &full[..cut]).expect("tear spill");
        match registry.estimate(victim) {
            Err(SessionError::Codec(_)) => {}
            other => prop_assert!(false, "torn spill must fail typed, got {other:?}"),
        }
        prop_assert!(matches!(
            registry.estimate(victim),
            Err(SessionError::UnknownSession(_))
        ), "poisoned session must be dropped");
        prop_assert!(!registry.store().unwrap().contains(victim));
        prop_assert_eq!(registry.stats().corrupt_dropped, 1);

        // The co-tenant never notices.
        prop_assert_eq!(bits(&registry, cotenant), cotenant_bits);

        // Wrong version / wrong magic / arbitrary bit flip: plant again
        // and poison differently — typed failure or a valid decode
        // (a flip inside an f64 payload can round-trip), never a panic.
        let store = registry.store().unwrap();
        let mut skewed = full.clone();
        skewed[4] ^= 0x10;
        store.save(victim, &skewed).expect("plant skewed");
        prop_assert_eq!(registry.recover_from_store().expect("recover"), 1);
        match registry.estimate(victim) {
            Err(SessionError::Codec(_)) => {}
            other => prop_assert!(false, "version skew must fail typed, got {other:?}"),
        }
        let mut flipped = full.clone();
        let at = (flip_hint as usize) % flipped.len();
        flipped[at] ^= 0xA5;
        store.save(victim, &flipped).expect("plant flipped");
        prop_assert_eq!(registry.recover_from_store().expect("recover"), 1);
        let _ = registry.estimate(victim); // typed error or valid decode; never a panic
        prop_assert_eq!(bits(&registry, cotenant), cotenant_bits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_round_trips_arbitrary_payloads(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..8),
    ) {
        let dir = scratch();
        let store = CheckpointStore::open(&dir).expect("open");
        for (i, payload) in payloads.iter().enumerate() {
            store.save(i as u64, payload).expect("save");
        }
        let ids = store.ids().expect("ids");
        prop_assert_eq!(ids.len(), payloads.len());
        for (i, payload) in payloads.iter().enumerate() {
            prop_assert_eq!(&store.load(i as u64).expect("load"), payload);
        }
        // Overwrites replace content; removals really remove.
        store.save(0, b"replacement").expect("overwrite");
        prop_assert_eq!(store.load(0).expect("load"), b"replacement".to_vec());
        prop_assert!(store.remove(0).expect("remove"));
        prop_assert!(!store.contains(0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

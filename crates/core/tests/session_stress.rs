//! Concurrency stress for [`kg_eval::session`]: N tenants interleaved on
//! one shared registry (one `TrialExecutor`, interned label stores, shared
//! dense arena pools) must produce estimate streams **byte-identical** to
//! each tenant run sequentially in its own isolated registry — at 1 and 4
//! executor workers, and regardless of thread interleaving.

use kg_eval::config::EvalConfig;
use kg_eval::dynamic::reservoir::OfferMode;
use kg_eval::session::{Engine, EvaluatorKind, SessionRegistry, SessionSpec};
use kg_eval::TrialExecutor;
use kg_model::retract::{KgEvent, Retraction};
use kg_model::update::UpdateBatch;
use std::thread;

const TENANTS: usize = 8;

fn spec_for(tenant: usize) -> SessionSpec {
    let base_clusters = 240 + 30 * (tenant % 3);
    let kind = if tenant.is_multiple_of(2) {
        EvaluatorKind::Reservoir { capacity: 40 }
    } else {
        EvaluatorKind::Stratified
    };
    let engine = if (tenant / 2).is_multiple_of(2) {
        Engine::Hash
    } else {
        Engine::Dense
    };
    let offer_mode = if tenant.is_multiple_of(4) {
        OfferMode::PerItem
    } else {
        OfferMode::Batched
    };
    SessionSpec {
        kind,
        engine,
        offer_mode,
        m: 5,
        config: EvalConfig::default(),
        seed: 9000 + tenant as u64,
        oracle_accuracy: 0.85 + 0.02 * (tenant % 5) as f64,
        oracle_seed: 7 + (tenant % 3) as u64,
        base_sizes: (0..base_clusters)
            .map(|i| 1 + ((i + tenant) % 8) as u32)
            .collect(),
    }
}

fn stream_for(tenant: usize) -> Vec<KgEvent> {
    let base = (240 + 30 * (tenant % 3)) as u32;
    vec![
        KgEvent::Insert(UpdateBatch::from_sizes(vec![3; 40]).unwrap()),
        KgEvent::Retract(
            Retraction::new(vec![(tenant as u32 % 10, vec![0]), (base + 5, vec![0, 1])]).unwrap(),
        ),
        KgEvent::Revise(
            Retraction::new(vec![(base + 10, vec![2])]).unwrap(),
            UpdateBatch::from_sizes(vec![4; 25]).unwrap(),
        ),
        KgEvent::Insert(UpdateBatch::from_sizes(vec![2; 30]).unwrap()),
    ]
}

/// Everything a tenant's stream produced, bit-exactly.
type Trace = Vec<(u64, u64, usize, bool, u64)>;

fn drive(registry: &SessionRegistry, tenant: usize) -> Trace {
    let id = registry.register(spec_for(tenant)).unwrap();
    let mut trace = Vec::new();
    for event in stream_for(tenant) {
        let r = registry.apply_events(id, &[event]).unwrap();
        trace.push((
            r.mean.to_bits(),
            r.var_of_mean.to_bits(),
            r.units,
            r.saturated,
            r.live_triples,
        ));
    }
    let audit = registry.audit(id, 300, 0xBEEF ^ tenant as u64).unwrap();
    trace.push((
        audit.estimate.mean.to_bits(),
        audit.estimate.var_of_mean.to_bits(),
        audit.units as usize,
        false,
        audit.labeled,
    ));
    trace
}

fn isolated_traces(workers: usize) -> Vec<Trace> {
    (0..TENANTS)
        .map(|t| {
            let registry =
                SessionRegistry::with_executor(TrialExecutor::new().with_workers(workers));
            drive(&registry, t)
        })
        .collect()
}

fn interleaved_traces(workers: usize) -> Vec<Trace> {
    let registry = SessionRegistry::with_executor(TrialExecutor::new().with_workers(workers));
    let mut traces: Vec<Option<Trace>> = (0..TENANTS).map(|_| None).collect();
    thread::scope(|scope| {
        let registry = &registry;
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| scope.spawn(move || drive(registry, t)))
            .collect();
        for (slot, handle) in traces.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("tenant thread panicked"));
        }
    });
    assert_eq!(registry.len(), TENANTS);
    traces.into_iter().map(|t| t.unwrap()).collect()
}

#[test]
fn interleaved_tenants_match_sequential_isolation_bytewise() {
    let reference = isolated_traces(1);
    for workers in [1usize, 4] {
        assert_eq!(
            isolated_traces(workers),
            reference,
            "isolated traces must be worker-invariant (workers={workers})"
        );
        assert_eq!(
            interleaved_traces(workers),
            reference,
            "interleaving leaked state across tenants (workers={workers})"
        );
    }
}

#[test]
fn checkpoints_taken_under_concurrency_restore_identically() {
    let registry = SessionRegistry::with_executor(TrialExecutor::new().with_workers(4));
    // Register + half-drive every tenant concurrently, checkpoint, then
    // finish both the live session and a restored copy in lockstep.
    let snapshots: Vec<(usize, u64, Vec<u8>)> = thread::scope(|scope| {
        let registry = &registry;
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| {
                scope.spawn(move || {
                    let id = registry.register(spec_for(t)).unwrap();
                    let events = stream_for(t);
                    for event in &events[..2] {
                        registry
                            .apply_events(id, std::slice::from_ref(event))
                            .unwrap();
                    }
                    (t, id, registry.checkpoint(id).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let fresh = SessionRegistry::new();
    for (t, live_id, bytes) in snapshots {
        let restored_id = fresh.restore(&bytes).unwrap();
        for event in &stream_for(t)[2..] {
            let live = registry
                .apply_events(live_id, std::slice::from_ref(event))
                .unwrap();
            let restored = fresh
                .apply_events(restored_id, std::slice::from_ref(event))
                .unwrap();
            assert_eq!(live.mean.to_bits(), restored.mean.to_bits(), "tenant {t}");
            assert_eq!(
                live.var_of_mean.to_bits(),
                restored.var_of_mean.to_bits(),
                "tenant {t}"
            );
            assert_eq!(live.units, restored.units, "tenant {t}");
        }
    }
}

//! Crash-recovery regression suite for the session lifecycle layer.
//!
//! The scenario that motivates this file: a write-through registry is
//! killed, some spill records are lost to disk corruption, and clients
//! re-register the lost tenants from their own checkpoint backups. Two
//! properties must hold:
//!
//! 1. **Ids never recycle.** A session id handed to a client must stay
//!    unique across crash/restart even when the spill records that would
//!    witness it are torn or deleted. Before the persisted id floor,
//!    `recover_from_store` advanced `next_id` only past the *surviving*
//!    records, so losing the highest-id record let `restore` re-mint a
//!    dead tenant's id — and a client holding the stale id silently
//!    received another tenant's estimates.
//! 2. **Restored tenants continue byte-identically.** After recovery plus
//!    client-side re-registration, every tenant's estimate stream matches
//!    a fault-free replay bit for bit, under eviction churn.

use kg_eval::dynamic::reservoir::OfferMode;
use kg_eval::session::{
    Engine, EvaluatorKind, LifecyclePolicy, SessionError, SessionRegistry, SessionSpec,
};
use kg_eval::{CheckpointStore, EvalConfig, TrialExecutor};
use kg_model::retract::{KgEvent, Retraction};
use kg_model::update::UpdateBatch;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kg-lifecycle-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn lifecycle_registry(dir: &std::path::Path, max_live: usize) -> SessionRegistry {
    SessionRegistry::with_lifecycle(
        TrialExecutor::new().with_workers(2),
        LifecyclePolicy {
            max_live: Some(max_live),
            idle_ttl: None,
            write_through: true,
        },
        CheckpointStore::open(dir).expect("open store"),
    )
}

/// The kg-bench serve/chaos tenant families, reproduced locally: eight
/// spec shapes cycling through evaluator kind, engine, and offer mode.
fn spec_for(seed: u64, tenant: usize) -> SessionSpec {
    let f = tenant % 8;
    let kind = if f.is_multiple_of(2) {
        EvaluatorKind::Reservoir {
            capacity: 32 + 16 * ((f / 4) % 2),
        }
    } else {
        EvaluatorKind::Stratified
    };
    let engine = if (f / 2).is_multiple_of(2) {
        Engine::Hash
    } else {
        Engine::Dense
    };
    let offer_mode = if f >= 4 && f.is_multiple_of(2) {
        OfferMode::PerItem
    } else {
        OfferMode::Batched
    };
    let base = 96 + 8 * f;
    SessionSpec {
        kind,
        engine,
        offer_mode,
        m: 5,
        config: EvalConfig::default(),
        seed: seed ^ ((tenant as u64) * 0x9E37_79B9),
        oracle_accuracy: 0.84 + 0.02 * (f % 6) as f64,
        oracle_seed: 11 + f as u64,
        base_sizes: (0..base).map(|i| 1 + ((i + f) as u32) % 7).collect(),
    }
}

fn script_for(tenant: usize) -> Vec<KgEvent> {
    let base = (96 + 8 * (tenant % 8)) as u32;
    vec![
        KgEvent::Insert(UpdateBatch::from_sizes(vec![3; 6 + tenant % 4]).expect("sizes")),
        KgEvent::Retract(
            Retraction::new(vec![((tenant as u32) % base, vec![0])]).expect("retraction"),
        ),
        KgEvent::Revise(
            Retraction::new(vec![((tenant as u32 + 3) % base, vec![0])]).expect("retraction"),
            UpdateBatch::from_sizes(vec![2; 5]).expect("sizes"),
        ),
    ]
}

fn bits(r: &kg_eval::session::EstimateReport) -> (u64, u64, usize) {
    (r.mean.to_bits(), r.var_of_mean.to_bits(), r.units)
}

/// Losing the highest-id spill records must not let `restore` re-mint
/// those ids: the persisted id floor keeps minted ids unique, so a stale
/// client handle can never alias a freshly restored tenant.
#[test]
fn lost_records_never_recycle_session_ids() {
    let seed = 77u64;
    let dir = scratch("no-recycle");

    let reg = lifecycle_registry(&dir, 8);
    let ids: Vec<u64> = (0..3)
        .map(|t| reg.register(spec_for(seed, t)).unwrap())
        .collect();
    let backup = reg.checkpoint(ids[2]).unwrap();
    drop(reg);

    // The crash eats the highest-id tenant's record.
    let reg = lifecycle_registry(&dir, 8);
    std::fs::remove_file(reg.store().unwrap().path_for(ids[2])).unwrap();
    assert_eq!(reg.recover_from_store().unwrap(), 2);

    // Its client re-registers from backup: the new id must be fresh.
    let new_id = reg.restore(&backup).unwrap();
    assert!(
        !ids.contains(&new_id),
        "restore re-minted a previously issued id {new_id} (issued: {ids:?})"
    );
    // The stale handle stays dead rather than aliasing anyone.
    assert!(matches!(
        reg.estimate(ids[2]),
        Err(SessionError::UnknownSession(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full crash → recover → re-register cycle under LRU churn: every
/// tenant — revived and restored alike — continues byte-identically to
/// a fault-free replay.
#[test]
fn restored_tenants_continue_byte_identically_under_churn() {
    let seed = 4242u64;
    let tenants = 12;
    let rounds = 3;
    let victims = [5usize, 7, 11];

    // Fault-free reference.
    let local = SessionRegistry::new();
    let mut expected = Vec::new();
    for t in 0..tenants {
        let lid = local.register(spec_for(seed, t)).unwrap();
        let per_round: Vec<_> = script_for(t)
            .into_iter()
            .map(|event| {
                bits(
                    &local
                        .apply_events(lid, std::slice::from_ref(&event))
                        .unwrap(),
                )
            })
            .collect();
        expected.push(per_round);
    }

    // Round 0 under an LRU cap far below the tenant count.
    let dir = scratch("churn");
    let reg = lifecycle_registry(&dir, 4);
    let mut ids: Vec<u64> = (0..tenants)
        .map(|t| reg.register(spec_for(seed, t)).unwrap())
        .collect();
    for t in 0..tenants {
        let rep = reg
            .apply_events(ids[t], std::slice::from_ref(&script_for(t)[0]))
            .unwrap();
        assert_eq!(bits(&rep), expected[t][0], "round 0 tenant {t}");
    }

    // Clients hold checkpoint backups; the crash then eats the victims'
    // spill records.
    let backups: Vec<(usize, Vec<u8>)> = victims
        .iter()
        .map(|&v| (v, reg.checkpoint(ids[v]).unwrap()))
        .collect();
    drop(reg);
    let reg = lifecycle_registry(&dir, 4);
    for &v in &victims {
        std::fs::remove_file(reg.store().unwrap().path_for(ids[v])).unwrap();
    }
    assert_eq!(reg.recover_from_store().unwrap(), tenants - victims.len());

    // Victims re-register from backup; everyone else revives lazily.
    for (v, ck) in &backups {
        assert!(reg.estimate(ids[*v]).is_err(), "victim {v} should be gone");
        ids[*v] = reg.restore(ck).unwrap();
        let rep = reg.estimate(ids[*v]).unwrap();
        assert_eq!(bits(&rep), expected[*v][0], "restored report tenant {v}");
    }

    // Remaining rounds stay byte-identical for every tenant.
    #[allow(clippy::needless_range_loop)] // r/t index ids, scripts, and expected in lockstep
    for r in 1..rounds {
        for t in 0..tenants {
            let rep = reg
                .apply_events(ids[t], std::slice::from_ref(&script_for(t)[r]))
                .unwrap();
            assert_eq!(bits(&rep), expected[t][r], "round {r} tenant {t}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

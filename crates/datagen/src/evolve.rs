//! Update-batch generation for evolving-KG experiments (§7.3).
//!
//! The paper's setting: the base KG is a 50% subset of MOVIE and updates
//! are random sets drawn from MOVIE-FULL — i.e. update batches have the
//! same long-tail cluster shape as the base, mixing new entities with
//! enrichment of existing ones (both of which become fresh `Δe` clusters
//! under Algorithm 1's bookkeeping). Each batch can carry its own accuracy,
//! composed into a single oracle via [`kg_annotate::PiecewiseOracle`].

use crate::generator::cluster_sizes;
use kg_annotate::oracle::{LabelOracle, RemOracle};
use kg_annotate::piecewise::PiecewiseOracle;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::update::UpdateBatch;

/// Generates update batches structurally matching a base profile.
#[derive(Debug, Clone)]
pub struct UpdateGenerator {
    zipf_exponent: f64,
    max_cluster: usize,
    avg_cluster: f64,
}

impl UpdateGenerator {
    /// Generator producing batches with the given cluster-size shape.
    pub fn new(zipf_exponent: f64, max_cluster: usize, avg_cluster: f64) -> Self {
        assert!(avg_cluster >= 1.0, "average cluster size must be >= 1");
        UpdateGenerator {
            zipf_exponent,
            max_cluster,
            avg_cluster,
        }
    }

    /// Generator matching the MOVIE profile shape (the paper's evolving-KG
    /// setting).
    pub fn movie_like() -> Self {
        Self::new(1.9, 4000, 9.2)
    }

    /// One update batch totalling (about) `total_triples` triples.
    pub fn batch(&self, total_triples: u64, seed: u64) -> UpdateBatch {
        let clusters = ((total_triples as f64 / self.avg_cluster) as usize).max(1);
        let sizes = cluster_sizes(
            clusters,
            total_triples.max(clusters as u64),
            self.zipf_exponent,
            self.max_cluster,
            seed,
        );
        UpdateBatch::from_sizes(sizes).expect("generator emits non-empty clusters")
    }

    /// A sequence of `count` batches of (about) `total_triples` each, with
    /// distinct seeds.
    pub fn sequence(&self, count: usize, total_triples: u64, seed: u64) -> Vec<UpdateBatch> {
        (0..count)
            .map(|i| self.batch(total_triples, seed.wrapping_add(i as u64 * 7919)))
            .collect()
    }
}

/// Compose the oracle for an evolved KG: the base oracle on clusters
/// `0..N0`, then one REM segment per update batch with its own accuracy.
///
/// Returns the piecewise oracle and the final total cluster count.
pub fn evolved_oracle(
    base: &ImplicitKg,
    base_oracle: Box<dyn LabelOracle + Send + Sync>,
    batches: &[(UpdateBatch, f64)],
    seed: u64,
) -> (PiecewiseOracle, u32) {
    let mut oracle = PiecewiseOracle::new(base_oracle);
    let mut next = base.num_clusters() as u32;
    for (i, (batch, accuracy)) in batches.iter().enumerate() {
        if batch.num_delta_clusters() == 0 {
            continue;
        }
        oracle.push_segment(
            next,
            Box::new(RemOracle::new(
                *accuracy,
                seed.wrapping_add(1000 + i as u64),
            )),
        );
        next += batch.num_delta_clusters() as u32;
    }
    (oracle, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_model::triple::TripleRef;

    #[test]
    fn batch_totals_and_shape() {
        let generator = UpdateGenerator::movie_like();
        let batch = generator.batch(130_000, 1);
        assert_eq!(batch.total_triples(), 130_000);
        // Average cluster size close to the base profile's.
        let avg = batch.total_triples() as f64 / batch.num_delta_clusters() as f64;
        assert!((avg - 9.2).abs() < 0.5, "avg {avg}");
    }

    #[test]
    fn sequences_are_distinct_but_deterministic() {
        let generator = UpdateGenerator::movie_like();
        let a = generator.sequence(3, 10_000, 5);
        let b = generator.sequence(3, 10_000, 5);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.delta_sizes(), y.delta_sizes());
        }
        assert_ne!(a[0].delta_sizes(), a[1].delta_sizes());
    }

    #[test]
    fn evolved_oracle_segments_by_batch() {
        let base = ImplicitKg::new(vec![2; 100]).unwrap();
        let generator = UpdateGenerator::new(1.5, 50, 2.0);
        let b1 = generator.batch(50, 1);
        let b2 = generator.batch(50, 2);
        let n1 = b1.num_delta_clusters() as u32;
        let (oracle, total) = evolved_oracle(
            &base,
            Box::new(RemOracle::new(1.0, 0)),
            &[(b1, 0.0), (b2, 1.0)],
            9,
        );
        assert_eq!(oracle.num_segments(), 3);
        // Base clusters perfect.
        assert!(oracle.label(TripleRef::new(50, 0)));
        // First update all wrong.
        assert!(!oracle.label(TripleRef::new(100, 0)));
        // Second update all right.
        assert!(oracle.label(TripleRef::new(100 + n1, 0)));
        assert!(total > 100 + n1);
    }

    #[test]
    fn tiny_batches_are_valid() {
        let generator = UpdateGenerator::new(1.5, 10, 1.0);
        let batch = generator.batch(1, 3);
        assert_eq!(batch.total_triples(), 1);
        assert_eq!(batch.num_delta_clusters(), 1);
    }
}

//! Update-batch generation for evolving-KG experiments (§7.3).
//!
//! The paper's setting: the base KG is a 50% subset of MOVIE and updates
//! are random sets drawn from MOVIE-FULL — i.e. update batches have the
//! same long-tail cluster shape as the base, mixing new entities with
//! enrichment of existing ones (both of which become fresh `Δe` clusters
//! under Algorithm 1's bookkeeping). Each batch can carry its own accuracy,
//! composed into a single oracle via [`kg_annotate::PiecewiseOracle`].

use crate::generator::cluster_sizes;
use kg_annotate::oracle::{LabelOracle, RemOracle};
use kg_annotate::piecewise::PiecewiseOracle;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::retract::{map_live_offset, KgEvent, Retraction};
use kg_model::update::UpdateBatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};

/// Per-event insert/delete volumes for a scheduled churn stream.
///
/// A flat schedule (`insert = per_batch`, `delete = round(fraction ·
/// per_batch)` everywhere) reproduces [`ChurnGenerator::events`] exactly;
/// bursty scenarios spike individual entries instead (see
/// `kg_datagen::scenario::EventSchedule`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventVolume {
    /// Triples inserted by this event's update batch.
    pub insert: u64,
    /// Live triples retracted before the insertion (clamped so at least
    /// one triple always stays live).
    pub delete: u64,
}

/// Generates update batches structurally matching a base profile.
#[derive(Debug, Clone)]
pub struct UpdateGenerator {
    zipf_exponent: f64,
    max_cluster: usize,
    avg_cluster: f64,
}

impl UpdateGenerator {
    /// Generator producing batches with the given cluster-size shape.
    pub fn new(zipf_exponent: f64, max_cluster: usize, avg_cluster: f64) -> Self {
        assert!(avg_cluster >= 1.0, "average cluster size must be >= 1");
        UpdateGenerator {
            zipf_exponent,
            max_cluster,
            avg_cluster,
        }
    }

    /// Generator matching the MOVIE profile shape (the paper's evolving-KG
    /// setting).
    pub fn movie_like() -> Self {
        Self::new(1.9, 4000, 9.2)
    }

    /// One update batch totalling (about) `total_triples` triples.
    pub fn batch(&self, total_triples: u64, seed: u64) -> UpdateBatch {
        let clusters = ((total_triples as f64 / self.avg_cluster) as usize).max(1);
        let sizes = cluster_sizes(
            clusters,
            total_triples.max(clusters as u64),
            self.zipf_exponent,
            self.max_cluster,
            seed,
        );
        UpdateBatch::from_sizes(sizes).expect("generator emits non-empty clusters")
    }

    /// A sequence of `count` batches of (about) `total_triples` each, with
    /// distinct seeds.
    pub fn sequence(&self, count: usize, total_triples: u64, seed: u64) -> Vec<UpdateBatch> {
        (0..count)
            .map(|i| self.batch(total_triples, seed.wrapping_add(i as u64 * 7919)))
            .collect()
    }
}

/// Generates churny [`KgEvent`] streams: each event inserts a fresh
/// movie-like batch and — at a configurable fraction of the batch volume —
/// retracts uniformly random *live* triples from the KG built so far.
///
/// The generator tracks the evolving live view itself (per-cluster live
/// sizes plus sorted dead raw-offset lists), so every emitted
/// [`Retraction`] addresses raw insertion-time coordinates of triples that
/// are genuinely still live — never double-retracting — exactly as the
/// evaluators and annotation engines require. Streams are deterministic in
/// `seed`, and a `delete_fraction` of `0.0` degenerates to a pure
/// [`KgEvent::Insert`] sequence matching [`UpdateGenerator::sequence`]'s
/// shape.
#[derive(Debug, Clone)]
pub struct ChurnGenerator {
    updates: UpdateGenerator,
    delete_fraction: f64,
}

impl ChurnGenerator {
    /// Churn stream whose insertions come from `updates` and whose
    /// per-event deletions total `delete_fraction` × the insert volume
    /// (rounded), drawn uniformly over the live triples.
    pub fn new(updates: UpdateGenerator, delete_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&delete_fraction),
            "delete fraction must be in [0, 1]"
        );
        ChurnGenerator {
            updates,
            delete_fraction,
        }
    }

    /// MOVIE-shaped insertions (the paper's evolving-KG setting) with the
    /// given deletion fraction.
    pub fn movie_like(delete_fraction: f64) -> Self {
        Self::new(UpdateGenerator::movie_like(), delete_fraction)
    }

    /// The configured deletion fraction.
    pub fn delete_fraction(&self) -> f64 {
        self.delete_fraction
    }

    /// A deterministic sequence of `count` events over `base`, each
    /// inserting (about) `per_batch` triples and retracting
    /// `round(delete_fraction · per_batch)` live ones sampled before the
    /// event's insertion. Events with deletions are [`KgEvent::Revise`];
    /// with a zero fraction every event is a plain [`KgEvent::Insert`].
    pub fn events(
        &self,
        base: &ImplicitKg,
        count: usize,
        per_batch: u64,
        seed: u64,
    ) -> Vec<KgEvent> {
        let per_event_deletes = (self.delete_fraction * per_batch as f64).round() as u64;
        let schedule = vec![
            EventVolume {
                insert: per_batch,
                delete: per_event_deletes,
            };
            count
        ];
        self.events_with_schedule(base, &schedule, seed)
    }

    /// Like [`events`](Self::events), but with explicit per-event
    /// insert/delete volumes — the hook burst scenarios use to spike
    /// individual events. A flat schedule is byte-identical to `events`
    /// (same RNG stream, same batch seeds `seed + i·7919`). The
    /// generator's own `delete_fraction` is ignored here; the schedule is
    /// authoritative.
    pub fn events_with_schedule(
        &self,
        base: &ImplicitKg,
        schedule: &[EventVolume],
        seed: u64,
    ) -> Vec<KgEvent> {
        let mut live: Vec<u32> = base.sizes().to_vec();
        // Sorted raw offsets already retracted, per cluster — the live →
        // raw translation table.
        let mut dead: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut total_live: u64 = base.total_triples();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6368_7572_6e21);

        let mut events = Vec::with_capacity(schedule.len());
        for (i, vol) in schedule.iter().enumerate() {
            let k = vol.delete.min(total_live.saturating_sub(1));
            let retraction = (k > 0).then(|| {
                // k distinct global live indices, uniform without
                // replacement by rejection (k ≪ total_live in any
                // realistic stream).
                let mut picked: HashSet<u64> = HashSet::with_capacity(k as usize);
                while picked.len() < k as usize {
                    picked.insert(rng.gen_range(0..total_live));
                }
                let mut picked: Vec<u64> = picked.into_iter().collect();
                picked.sort_unstable();
                // Walk the live prefix once to turn global indices into
                // (cluster, live offset), then translate live → raw
                // through the cluster's dead list.
                let mut by_cluster: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
                let mut cluster = 0usize;
                let mut cluster_start = 0u64;
                for g in picked {
                    while cluster_start + u64::from(live[cluster]) <= g {
                        cluster_start += u64::from(live[cluster]);
                        cluster += 1;
                    }
                    let live_off = (g - cluster_start) as u32;
                    let empty = Vec::new();
                    let dead_here = dead.get(&(cluster as u32)).unwrap_or(&empty);
                    let raw = map_live_offset(dead_here, live_off);
                    by_cluster.entry(cluster as u32).or_default().push(raw);
                }
                // Commit the kills to the generator's own live view.
                for (&c, offsets) in &by_cluster {
                    live[c as usize] -= offsets.len() as u32;
                    total_live -= offsets.len() as u64;
                    let list = dead.entry(c).or_default();
                    list.extend_from_slice(offsets);
                    list.sort_unstable();
                }
                Retraction::new(by_cluster.into_iter().collect())
                    .expect("sampled kills are non-empty and distinct")
            });

            let batch = self
                .updates
                .batch(vol.insert, seed.wrapping_add(i as u64 * 7919));
            total_live += batch.total_triples();
            live.extend_from_slice(batch.delta_sizes());

            events.push(match retraction {
                Some(r) => KgEvent::Revise(r, batch),
                None => KgEvent::Insert(batch),
            });
        }
        events
    }
}

/// Compose the oracle for an evolved KG: the base oracle on clusters
/// `0..N0`, then one REM segment per update batch with its own accuracy.
///
/// Returns the piecewise oracle and the final total cluster count.
pub fn evolved_oracle(
    base: &ImplicitKg,
    base_oracle: Box<dyn LabelOracle + Send + Sync>,
    batches: &[(UpdateBatch, f64)],
    seed: u64,
) -> (PiecewiseOracle, u32) {
    let mut oracle = PiecewiseOracle::new(base_oracle);
    let mut next = base.num_clusters() as u32;
    for (i, (batch, accuracy)) in batches.iter().enumerate() {
        if batch.num_delta_clusters() == 0 {
            continue;
        }
        oracle.push_segment(
            next,
            Box::new(RemOracle::new(
                *accuracy,
                seed.wrapping_add(1000 + i as u64),
            )),
        );
        next += batch.num_delta_clusters() as u32;
    }
    (oracle, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_model::triple::TripleRef;

    #[test]
    fn batch_totals_and_shape() {
        let generator = UpdateGenerator::movie_like();
        let batch = generator.batch(130_000, 1);
        assert_eq!(batch.total_triples(), 130_000);
        // Average cluster size close to the base profile's.
        let avg = batch.total_triples() as f64 / batch.num_delta_clusters() as f64;
        assert!((avg - 9.2).abs() < 0.5, "avg {avg}");
    }

    #[test]
    fn sequences_are_distinct_but_deterministic() {
        let generator = UpdateGenerator::movie_like();
        let a = generator.sequence(3, 10_000, 5);
        let b = generator.sequence(3, 10_000, 5);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.delta_sizes(), y.delta_sizes());
        }
        assert_ne!(a[0].delta_sizes(), a[1].delta_sizes());
    }

    #[test]
    fn evolved_oracle_segments_by_batch() {
        let base = ImplicitKg::new(vec![2; 100]).unwrap();
        let generator = UpdateGenerator::new(1.5, 50, 2.0);
        let b1 = generator.batch(50, 1);
        let b2 = generator.batch(50, 2);
        let n1 = b1.num_delta_clusters() as u32;
        let (oracle, total) = evolved_oracle(
            &base,
            Box::new(RemOracle::new(1.0, 0)),
            &[(b1, 0.0), (b2, 1.0)],
            9,
        );
        assert_eq!(oracle.num_segments(), 3);
        // Base clusters perfect.
        assert!(oracle.label(TripleRef::new(50, 0)));
        // First update all wrong.
        assert!(!oracle.label(TripleRef::new(100, 0)));
        // Second update all right.
        assert!(oracle.label(TripleRef::new(100 + n1, 0)));
        assert!(total > 100 + n1);
    }

    #[test]
    fn churn_streams_retract_only_live_triples() {
        use kg_annotate::label_store::LabelStore;
        use kg_annotate::oracle::RemOracle;

        let base = ImplicitKg::new(vec![3; 200]).unwrap();
        let churn = ChurnGenerator::new(UpdateGenerator::new(1.5, 50, 2.0), 0.25);
        let events = churn.events(&base, 8, 100, 42);
        assert_eq!(events.len(), 8);
        // Folding the stream over a LabelStore exercises the store's own
        // never-double-retract / offset-in-range assertions — the ground
        // truth every churn test builds on.
        let oracle = RemOracle::new(0.9, 1);
        let mut store = LabelStore::materialize(&base, &oracle);
        let mut retracted = 0u64;
        let mut inserted = 0u64;
        for event in &events {
            match event {
                KgEvent::Insert(b) => {
                    store.extend_with_batch(b, &oracle);
                    inserted += b.total_triples();
                }
                KgEvent::Retract(r) => {
                    store.retract(r);
                    retracted += r.total_retracted();
                }
                KgEvent::Revise(r, b) => {
                    store.retract(r);
                    store.extend_with_batch(b, &oracle);
                    retracted += r.total_retracted();
                    inserted += b.total_triples();
                }
            }
        }
        assert_eq!(retracted, 8 * 25, "25% of every 100-triple event");
        assert_eq!(
            store.live_total_triples(),
            base.total_triples() + inserted - retracted
        );
    }

    #[test]
    fn churn_streams_are_deterministic_and_fraction_zero_is_insert_only() {
        let base = ImplicitKg::new(vec![3; 100]).unwrap();
        let churn = ChurnGenerator::movie_like(0.5);
        let a = churn.events(&base, 4, 200, 7);
        let b = churn.events(&base, 4, 200, 7);
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (KgEvent::Revise(rx, bx), KgEvent::Revise(ry, by)) => {
                    assert_eq!(rx.entries(), ry.entries());
                    assert_eq!(bx.delta_sizes(), by.delta_sizes());
                }
                _ => panic!("50% churn events should all be revisions"),
            }
        }
        let pure = ChurnGenerator::movie_like(0.0);
        assert_eq!(pure.delete_fraction(), 0.0);
        for event in pure.events(&base, 4, 200, 7) {
            assert!(matches!(event, KgEvent::Insert(_)));
        }
    }

    #[test]
    fn flat_schedule_is_byte_identical_to_events() {
        let base = ImplicitKg::new(vec![3; 150]).unwrap();
        let churn = ChurnGenerator::new(UpdateGenerator::new(1.5, 50, 2.0), 0.3);
        let plain = churn.events(&base, 6, 120, 33);
        let schedule = vec![
            EventVolume {
                insert: 120,
                delete: 36
            };
            6
        ];
        let scheduled = churn.events_with_schedule(&base, &schedule, 33);
        assert_eq!(plain.len(), scheduled.len());
        for (x, y) in plain.iter().zip(&scheduled) {
            match (x, y) {
                (KgEvent::Revise(rx, bx), KgEvent::Revise(ry, by)) => {
                    assert_eq!(rx.entries(), ry.entries());
                    assert_eq!(bx.delta_sizes(), by.delta_sizes());
                }
                (KgEvent::Insert(bx), KgEvent::Insert(by)) => {
                    assert_eq!(bx.delta_sizes(), by.delta_sizes());
                }
                _ => panic!("event kinds diverged"),
            }
        }
    }

    #[test]
    fn bursty_schedules_spike_single_events() {
        let base = ImplicitKg::new(vec![3; 100]).unwrap();
        let churn = ChurnGenerator::new(UpdateGenerator::new(1.5, 50, 2.0), 0.0);
        let schedule = [
            EventVolume {
                insert: 50,
                delete: 0,
            },
            // Burst: insert 10× the steady volume and churn out a third
            // of what the base held.
            EventVolume {
                insert: 500,
                delete: 100,
            },
            EventVolume {
                insert: 50,
                delete: 5,
            },
        ];
        let events = churn.events_with_schedule(&base, &schedule, 9);
        assert_eq!(events.len(), 3);
        assert!(matches!(&events[0], KgEvent::Insert(b) if b.total_triples() == 50));
        match &events[1] {
            KgEvent::Revise(r, b) => {
                assert_eq!(r.total_retracted(), 100);
                assert_eq!(b.total_triples(), 500);
            }
            other => panic!("expected burst revision, got {other:?}"),
        }
        match &events[2] {
            KgEvent::Revise(r, b) => {
                assert_eq!(r.total_retracted(), 5);
                assert_eq!(b.total_triples(), 50);
            }
            other => panic!("expected steady revision, got {other:?}"),
        }
        // Deterministic replay.
        let again = churn.events_with_schedule(&base, &schedule, 9);
        for (x, y) in events.iter().zip(&again) {
            match (x, y) {
                (KgEvent::Revise(rx, _), KgEvent::Revise(ry, _)) => {
                    assert_eq!(rx.entries(), ry.entries())
                }
                (KgEvent::Insert(bx), KgEvent::Insert(by)) => {
                    assert_eq!(bx.delta_sizes(), by.delta_sizes())
                }
                _ => panic!("replay diverged"),
            }
        }
    }

    #[test]
    fn tiny_batches_are_valid() {
        let generator = UpdateGenerator::new(1.5, 10, 1.0);
        let batch = generator.batch(1, 3);
        assert_eq!(batch.total_triples(), 1);
        assert_eq!(batch.num_delta_clusters(), 1);
    }
}

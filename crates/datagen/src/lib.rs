//! # kg-datagen — dataset profiles and synthetic generators
//!
//! The paper evaluates on four KGs (Table 3) that we cannot redistribute:
//! NELL and YAGO samples with MTurk gold labels, and the proprietary
//! MOVIE / MOVIE-FULL built from IMDb + WikiData. This crate generates
//! synthetic populations that preserve every property the sampling theory
//! depends on:
//!
//! * exact entity/triple counts and average cluster sizes of Table 3;
//! * long-tail cluster-size distributions (bounded Zipf; >98% of NELL
//!   clusters below size 5, §7.2.2);
//! * gold accuracies (91% NELL, 99% YAGO, 90% MOVIE) — exact for the
//!   materialized small profiles, in expectation for procedural oracles;
//! * the size–accuracy correlation of Fig. 3 (via the BMM of Eq. 15).
//!
//! [`profile::DatasetProfile`] is the entry point; [`evolve`] generates
//! update batches for the evolving-KG experiments (§7.3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod evolve;
pub mod generator;
pub mod profile;
pub mod scenario;

pub use evolve::{ChurnGenerator, EventVolume, UpdateGenerator};
pub use profile::{Dataset, DatasetProfile, LabelModel};
pub use scenario::{
    AccuracyDrift, EventSchedule, MaterializedScenario, PoolSpec, PredicateCosts, Scenario,
    SizeDistribution,
};

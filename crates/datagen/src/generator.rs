//! Cluster-size generation with exact totals, plus materialized small KGs
//! for baselines that need triple content (KGEval's coupling graph).

use kg_annotate::oracle::GoldLabels;
use kg_model::builder::KgBuilder;
use kg_model::graph::KnowledgeGraph;
use kg_model::implicit::ImplicitKg;
use kg_stats::distr::{BoundedPareto, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nudge `sizes` until their total is exactly `target`: a bulk rescale
/// first when the gap is large (preserves the tail shape), then random
/// ±1 fix-ups on the same RNG stream. Shared by the Zipf and Pareto
/// generators so both hit Table-3-style exact counts.
fn fix_total(sizes: &mut [u32], target: i64, rng: &mut StdRng) {
    let n = sizes.len();
    let mut current: i64 = sizes.iter().map(|&s| s as i64).sum();
    if (current - target).unsigned_abs() > (n as u64) * 4 {
        let scale = target as f64 / current as f64;
        for s in sizes.iter_mut() {
            *s = ((*s as f64 * scale).round() as u32).max(1);
        }
        current = sizes.iter().map(|&s| s as i64).sum();
    }
    while current < target {
        let i = rng.gen_range(0..n);
        sizes[i] += 1;
        current += 1;
    }
    while current > target {
        let i = rng.gen_range(0..n);
        if sizes[i] > 1 {
            sizes[i] -= 1;
            current -= 1;
        }
    }
}

/// Generate `n` cluster sizes with a bounded-Zipf long tail whose total is
/// **exactly** `total_triples`.
///
/// Sizes are drawn from `Zipf(max_size, exponent)` and then nudged ±1 on
/// random clusters until the total matches — preserving the tail shape
/// while hitting Table 3's counts exactly. Requires `total ≥ n` (clusters
/// are non-empty).
pub fn cluster_sizes(
    n: usize,
    total_triples: u64,
    exponent: f64,
    max_size: usize,
    seed: u64,
) -> Vec<u32> {
    assert!(n > 0, "need at least one cluster");
    assert!(
        total_triples >= n as u64,
        "total triples {total_triples} < clusters {n}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(max_size, exponent).expect("valid Zipf parameters");
    let mut sizes: Vec<u32> = (0..n).map(|_| zipf.sample(&mut rng) as u32).collect();
    fix_total(&mut sizes, total_triples as i64, &mut rng);
    sizes
}

/// Generate `n` cluster sizes from a bounded Pareto tail whose total is
/// **exactly** `total_triples`.
///
/// Heavier-tailed than the Zipf profile at the same nominal exponent:
/// a continuous `BoundedPareto(1, shape, max_size)` draw is floored to an
/// integer size, so small `shape` values (`< 1`) put a macroscopic share
/// of all triples in a handful of giant clusters — the hostile skew
/// regime the scenario matrix exercises. Deterministic in `seed`; totals
/// are fixed up exactly like [`cluster_sizes`].
pub fn pareto_cluster_sizes(
    n: usize,
    total_triples: u64,
    shape: f64,
    max_size: usize,
    seed: u64,
) -> Vec<u32> {
    assert!(n > 0, "need at least one cluster");
    assert!(
        total_triples >= n as u64,
        "total triples {total_triples} < clusters {n}"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x007a_7e70);
    let pareto =
        BoundedPareto::new(1.0, shape, max_size.max(2) as f64).expect("valid Pareto parameters");
    let mut sizes: Vec<u32> = (0..n)
        .map(|_| pareto.sample_size(&mut rng) as u32)
        .collect();
    fix_total(&mut sizes, total_triples as i64, &mut rng);
    sizes
}

/// Materialize per-triple labels so the realized number of correct triples
/// is **exactly** `round(accuracy · M)`, while preserving a size–accuracy
/// correlation: clusters are ranked by a noisy function of size and labels
/// flipped preferentially at the accuracy boundary.
pub fn exact_gold_labels(sizes: &[u32], accuracy: f64, seed: u64) -> GoldLabels {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x601d);
    let total: u64 = sizes.iter().map(|&s| s as u64).sum();
    let target_correct = (accuracy * total as f64).round() as u64;

    // Per-cluster propensity: larger clusters more accurate (Fig. 3), with
    // noise so the scatter is realistic.
    // Noise and slope are kept small, and the trend only *raises* large
    // clusters: extra between-cluster accuracy variance — especially a
    // penalty on the small clusters that dominate long-tail KGs — is
    // exactly what degrades TWCS (Eq. 10's first term), and the paper's
    // real labels behave near-binomially with a mild positive size trend
    // (Fig. 3).
    let mut labels: Vec<Vec<bool>> = Vec::with_capacity(sizes.len());
    let mut correct: u64 = 0;
    for &s in sizes {
        let noise: f64 = rng.gen::<f64>() * 0.06 - 0.03;
        let p = (accuracy - 0.02 + 0.03 * (s as f64).ln() + noise).clamp(0.02, 1.0);
        let cluster: Vec<bool> = (0..s).map(|_| rng.gen::<f64>() < p).collect();
        correct += cluster.iter().filter(|&&b| b).count() as u64;
        labels.push(cluster);
    }

    // Flip random labels toward the exact target.
    let flat_index = |rng: &mut StdRng, labels: &Vec<Vec<bool>>| {
        let c = rng.gen_range(0..labels.len());
        let o = rng.gen_range(0..labels[c].len());
        (c, o)
    };
    while correct < target_correct {
        let (c, o) = flat_index(&mut rng, &labels);
        if !labels[c][o] {
            labels[c][o] = true;
            correct += 1;
        }
    }
    while correct > target_correct {
        let (c, o) = flat_index(&mut rng, &labels);
        if labels[c][o] {
            labels[c][o] = false;
            correct -= 1;
        }
    }
    GoldLabels::new(labels)
}

/// Materialize a small KG with realistic structure for content-based
/// baselines: subjects `e<i>`, a small predicate pool, and objects that are
/// shared across triples (entity objects referencing other subjects,
/// literal objects reused per predicate) so that KGEval-style coupling
/// constraints (same subject, same predicate–object) have edges to work
/// with.
pub fn materialize_graph(sizes: &[u32], num_predicates: usize, seed: u64) -> KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9afa);
    let mut b = KgBuilder::new();
    let n = sizes.len();
    for (i, &s) in sizes.iter().enumerate() {
        let subject = format!("e{i}");
        for t in 0..s {
            let p = rng.gen_range(0..num_predicates.max(1));
            let predicate = format!("p{p}");
            if rng.gen::<f64>() < 0.5 && n > 1 {
                // Entity object: reference another subject.
                let mut o = rng.gen_range(0..n);
                if o == i {
                    o = (o + 1) % n;
                }
                b.add_entity_triple(&subject, &predicate, &format!("e{o}"));
            } else {
                // Literal object: small shared vocabulary per predicate.
                let v = rng.gen_range(0..8);
                b.add_literal_triple(&subject, &predicate, &format!("v{p}_{v}"));
            }
            let _ = t;
        }
    }
    b.build()
}

/// Convenience: sizes → implicit KG.
pub fn implicit_kg(sizes: Vec<u32>) -> ImplicitKg {
    ImplicitKg::new(sizes).expect("generator produces non-empty clusters")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::oracle::{true_accuracy, LabelOracle};
    use kg_model::implicit::ClusterPopulation;

    #[test]
    fn sizes_hit_exact_totals() {
        let sizes = cluster_sizes(817, 1860, 2.0, 25, 1);
        assert_eq!(sizes.len(), 817);
        assert_eq!(sizes.iter().map(|&s| s as u64).sum::<u64>(), 1860);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn sizes_have_long_tail() {
        let sizes = cluster_sizes(10_000, 92_000, 1.4, 2000, 2);
        assert_eq!(sizes.iter().map(|&s| s as u64).sum::<u64>(), 92_000);
        let small = sizes.iter().filter(|&&s| s <= 3).count() as f64 / 10_000.0;
        let max = *sizes.iter().max().unwrap();
        assert!(small > 0.4, "small fraction {small}");
        assert!(max > 50, "max {max}");
    }

    #[test]
    fn sizes_deterministic_per_seed() {
        assert_eq!(
            cluster_sizes(100, 500, 1.5, 50, 7),
            cluster_sizes(100, 500, 1.5, 50, 7)
        );
        assert_ne!(
            cluster_sizes(100, 500, 1.5, 50, 7),
            cluster_sizes(100, 500, 1.5, 50, 8)
        );
    }

    #[test]
    #[should_panic(expected = "total triples")]
    fn rejects_impossible_totals() {
        cluster_sizes(10, 5, 1.5, 10, 1);
    }

    #[test]
    fn pareto_sizes_hit_exact_totals_deterministically() {
        let sizes = pareto_cluster_sizes(800, 9_000, 1.1, 2000, 6);
        assert_eq!(sizes.len(), 800);
        assert_eq!(sizes.iter().map(|&s| s as u64).sum::<u64>(), 9_000);
        assert!(sizes.iter().all(|&s| s >= 1));
        assert_eq!(sizes, pareto_cluster_sizes(800, 9_000, 1.1, 2000, 6));
        assert_ne!(sizes, pareto_cluster_sizes(800, 9_000, 1.1, 2000, 7));
    }

    #[test]
    fn pareto_sizes_are_heavily_skewed() {
        // shape < 1: a handful of giant clusters hold a macroscopic share
        // of all triples while most clusters stay tiny.
        let mut p = pareto_cluster_sizes(5_000, 60_000, 0.8, 4000, 8);
        assert_eq!(p.iter().map(|&s| s as u64).sum::<u64>(), 60_000);
        p.sort_unstable_by(|a, b| b.cmp(a));
        assert!(p[0] > 500, "top cluster {}", p[0]);
        let top10: u64 = p[..10].iter().map(|&s| u64::from(s)).sum();
        assert!(
            top10 as f64 > 0.15 * 60_000.0,
            "top-10 clusters hold only {top10} of 60000 triples"
        );
        let tiny = p.iter().filter(|&&s| s <= 2).count();
        assert!(tiny > 2_500, "tiny clusters {tiny} of 5000");
    }

    #[test]
    fn gold_labels_exact_accuracy() {
        let sizes = cluster_sizes(817, 1860, 2.0, 25, 3);
        let kg = implicit_kg(sizes.clone());
        let gold = exact_gold_labels(&sizes, 0.91, 3);
        let acc = true_accuracy(&kg, &gold);
        assert!((acc - 0.91).abs() < 0.0006, "accuracy {acc}");
    }

    #[test]
    fn gold_labels_show_size_correlation() {
        let sizes = cluster_sizes(2000, 20_000, 1.3, 500, 4);
        let gold = exact_gold_labels(&sizes, 0.85, 4);
        // Average accuracy of big vs small clusters.
        let (mut big, mut nbig, mut small, mut nsmall) = (0.0, 0, 0.0, 0);
        for (c, &s) in sizes.iter().enumerate() {
            let acc = gold.cluster_accuracy(c as u32, s as usize);
            if s >= 20 {
                big += acc;
                nbig += 1;
            } else if s <= 2 {
                small += acc;
                nsmall += 1;
            }
        }
        assert!(nbig > 5 && nsmall > 5);
        assert!(
            big / nbig as f64 > small / nsmall as f64,
            "big {} small {}",
            big / nbig as f64,
            small / nsmall as f64
        );
    }

    #[test]
    fn materialized_graph_matches_skeleton() {
        let sizes = cluster_sizes(100, 300, 1.5, 20, 5);
        let g = materialize_graph(&sizes, 12, 5);
        assert_eq!(g.num_clusters(), 100);
        assert_eq!(g.total_triples(), 300);
        // Cluster sizes preserved in order.
        assert_eq!(g.cluster_sizes(), sizes);
        assert!(g.predicates().len() <= 12);
    }
}

//! Dataset profiles matching the paper's Table 3.
//!
//! | Profile | Entities | Triples | Avg cluster | Gold accuracy |
//! |---------|----------|---------|-------------|---------------|
//! | NELL    | 817      | 1,860   | 2.3         | 91%           |
//! | YAGO    | 822      | 1,386   | 1.7         | 99%           |
//! | MOVIE   | 288,770  | 2,653,870 | 9.2       | 90%           |
//! | MOVIE-FULL | 14,495,142 | 130,591,799 | 9.0 | (REM, configurable) |
//!
//! Small profiles (NELL/YAGO) carry *materialized exact* gold labels with
//! the Fig. 3 size–accuracy correlation; large profiles use procedural
//! oracles (REM / BMM) so no label storage is needed.

use crate::generator::{cluster_sizes, exact_gold_labels, implicit_kg, materialize_graph};
use kg_annotate::oracle::{BmmOracle, GoldLabels, LabelOracle, RemOracle};
use kg_model::graph::KnowledgeGraph;
use kg_model::implicit::ImplicitKg;
use std::sync::Arc;

/// How labels are generated for a profile.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelModel {
    /// Materialized gold labels hitting the target accuracy exactly with a
    /// size–accuracy correlation (NELL, YAGO).
    ExactGold {
        /// Target overall accuracy.
        accuracy: f64,
    },
    /// Random Error Model: i.i.d. Bernoulli labels (MOVIE, MOVIE-FULL).
    Rem {
        /// Probability a triple is correct (`1 − r_ε`).
        accuracy: f64,
    },
    /// Binomial Mixture Model (Eq. 15): size-correlated cluster accuracies
    /// (MOVIE-SYN).
    Bmm {
        /// Size threshold `k`.
        k: u32,
        /// Sigmoid scale `c`.
        c: f64,
        /// Noise standard deviation `σ`.
        sigma: f64,
    },
}

/// A dataset blueprint: structure parameters plus a label model.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Display name.
    pub name: String,
    /// Number of entity clusters.
    pub entities: usize,
    /// Number of triples.
    pub triples: u64,
    /// Zipf exponent of the cluster-size tail.
    pub zipf_exponent: f64,
    /// Largest possible cluster.
    pub max_cluster: usize,
    /// Label generation model.
    pub labels: LabelModel,
}

/// A generated dataset: population skeleton + label oracle.
pub struct Dataset {
    /// Profile name.
    pub name: String,
    /// The cluster population.
    pub population: ImplicitKg,
    /// Ground-truth labels.
    pub oracle: Arc<dyn LabelOracle + Send + Sync>,
    /// The nominal gold accuracy (exact for `ExactGold`, expected for
    /// procedural models).
    pub gold_accuracy: f64,
}

impl DatasetProfile {
    /// NELL sample: sports-domain KG, 817 entities / 1,860 triples, 91%
    /// accurate, extreme long tail (>98% of clusters below size 5).
    pub fn nell() -> Self {
        DatasetProfile {
            name: "NELL".into(),
            entities: 817,
            triples: 1860,
            zipf_exponent: 2.2,
            max_cluster: 25,
            labels: LabelModel::ExactGold { accuracy: 0.91 },
        }
    }

    /// YAGO2 sample: open-domain, 822 entities / 1,386 triples, 99%
    /// accurate.
    pub fn yago() -> Self {
        DatasetProfile {
            name: "YAGO".into(),
            entities: 822,
            triples: 1386,
            zipf_exponent: 2.6,
            max_cluster: 35,
            labels: LabelModel::ExactGold { accuracy: 0.99 },
        }
    }

    /// MOVIE: entertainment KG, 288,770 entities / 2,653,870 triples,
    /// ~90% accurate (REM).
    pub fn movie() -> Self {
        DatasetProfile {
            name: "MOVIE".into(),
            entities: 288_770,
            triples: 2_653_870,
            zipf_exponent: 1.9,
            max_cluster: 4000,
            labels: LabelModel::Rem { accuracy: 0.90 },
        }
    }

    /// MOVIE-SYN: MOVIE structure with BMM labels (§7.1.2). Paper defaults
    /// `k = 3`; `c` and `σ` vary per experiment.
    pub fn movie_syn(c: f64, sigma: f64) -> Self {
        DatasetProfile {
            name: format!("MOVIE-SYN(c={c},s={sigma})"),
            entities: 288_770,
            triples: 2_653_870,
            zipf_exponent: 1.9,
            max_cluster: 4000,
            labels: LabelModel::Bmm { k: 3, c, sigma },
        }
    }

    /// MOVIE-FULL: 14,495,142 entities / 130,591,799 triples, REM labels at
    /// the given accuracy (the paper uses `r_ε = 0.1` → 90%).
    pub fn movie_full(accuracy: f64) -> Self {
        DatasetProfile {
            name: "MOVIE-FULL".into(),
            entities: 14_495_142,
            triples: 130_591_799,
            zipf_exponent: 1.9,
            max_cluster: 8000,
            labels: LabelModel::Rem { accuracy },
        }
    }

    /// A proportional subsample of this profile (used by the Fig. 7 size
    /// sweep: 26M → 130M triples).
    pub fn scaled(&self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0,1]");
        let entities = ((self.entities as f64 * fraction) as usize).max(1);
        let triples = ((self.triples as f64 * fraction) as u64).max(entities as u64);
        DatasetProfile {
            name: format!("{}@{:.0}%", self.name, fraction * 100.0),
            entities,
            triples,
            ..self.clone()
        }
    }

    /// The nominal gold accuracy of the label model (expected for BMM,
    /// where it depends on the size distribution; see
    /// [`Dataset::gold_accuracy`] for the realized value).
    pub fn nominal_accuracy(&self) -> Option<f64> {
        match &self.labels {
            LabelModel::ExactGold { accuracy } | LabelModel::Rem { accuracy } => Some(*accuracy),
            LabelModel::Bmm { .. } => None,
        }
    }

    /// Generate the dataset deterministically from a seed.
    pub fn generate(&self, seed: u64) -> Dataset {
        let sizes = cluster_sizes(
            self.entities,
            self.triples,
            self.zipf_exponent,
            self.max_cluster,
            seed,
        );
        let (oracle, gold): (Arc<dyn LabelOracle + Send + Sync>, f64) = match &self.labels {
            LabelModel::ExactGold { accuracy } => {
                let gold = exact_gold_labels(&sizes, *accuracy, seed);
                (Arc::new(gold), *accuracy)
            }
            LabelModel::Rem { accuracy } => (Arc::new(RemOracle::new(*accuracy, seed)), *accuracy),
            LabelModel::Bmm { k, c, sigma } => {
                let sizes_arc = Arc::new(sizes.clone());
                let bmm = BmmOracle::new(sizes_arc, *k, *c, *sigma, seed);
                // Expected accuracy = size-weighted mean of p̂_i.
                let total: u64 = sizes.iter().map(|&s| s as u64).sum();
                let mean = sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| s as f64 * bmm.p_hat(i as u32))
                    .sum::<f64>()
                    / total as f64;
                (Arc::new(bmm), mean)
            }
        };
        Dataset {
            name: self.name.clone(),
            population: implicit_kg(sizes),
            oracle,
            gold_accuracy: gold,
        }
    }

    /// Generate a *materialized* small KG (with triple content) plus exact
    /// gold labels — required by content-based baselines (KGEval). Panics
    /// for profiles above one million triples (materialization is for the
    /// small gold-label datasets).
    pub fn generate_materialized(&self, seed: u64) -> (KnowledgeGraph, GoldLabels) {
        assert!(
            self.triples <= 1_000_000,
            "materialization is intended for small profiles"
        );
        let sizes = cluster_sizes(
            self.entities,
            self.triples,
            self.zipf_exponent,
            self.max_cluster,
            seed,
        );
        let accuracy = self
            .nominal_accuracy()
            .expect("small profiles use explicit accuracies");
        let graph = materialize_graph(&sizes, 16, seed);
        let gold = exact_gold_labels(&sizes, accuracy, seed);
        (graph, gold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::oracle::true_accuracy;
    use kg_model::implicit::ClusterPopulation;
    use kg_model::stats::KgStatistics;

    #[test]
    fn nell_matches_table3() {
        let ds = DatasetProfile::nell().generate(1);
        assert_eq!(ds.population.num_clusters(), 817);
        assert_eq!(ds.population.total_triples(), 1860);
        let stats = KgStatistics::of(&ds.population);
        assert!((stats.avg_cluster_size - 2.28).abs() < 0.05);
        // Long tail: most clusters below size 5 (§7.2.2 says >98%).
        assert!(
            stats.fraction_smaller_than(5) > 0.85,
            "{}",
            stats.fraction_smaller_than(5)
        );
        let acc = true_accuracy(&ds.population, ds.oracle.as_ref());
        assert!((acc - 0.91).abs() < 0.001, "accuracy {acc}");
    }

    #[test]
    fn yago_matches_table3() {
        let ds = DatasetProfile::yago().generate(2);
        assert_eq!(ds.population.num_clusters(), 822);
        assert_eq!(ds.population.total_triples(), 1386);
        let acc = true_accuracy(&ds.population, ds.oracle.as_ref());
        assert!((acc - 0.99).abs() < 0.001, "accuracy {acc}");
    }

    #[test]
    fn movie_structure_matches_table3() {
        let ds = DatasetProfile::movie().generate(3);
        assert_eq!(ds.population.num_clusters(), 288_770);
        assert_eq!(ds.population.total_triples(), 2_653_870);
        let stats = KgStatistics::of(&ds.population);
        assert!((stats.avg_cluster_size - 9.19).abs() < 0.05);
        assert_eq!(ds.gold_accuracy, 0.90);
    }

    #[test]
    fn movie_syn_accuracy_is_size_dependent() {
        let p = DatasetProfile::movie_syn(0.01, 0.1);
        assert!(p.nominal_accuracy().is_none());
        assert!(p.name.contains("MOVIE-SYN"));
    }

    #[test]
    fn scaled_profile_shrinks_proportionally() {
        let p = DatasetProfile::movie().scaled(0.1);
        assert_eq!(p.entities, 28_877);
        assert!((p.triples as f64 - 265_387.0).abs() < 1.0);
        let ds = p.generate(4);
        assert_eq!(ds.population.num_clusters(), 28_877);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetProfile::nell().generate(9);
        let b = DatasetProfile::nell().generate(9);
        assert_eq!(a.population.sizes(), b.population.sizes());
        let ta = true_accuracy(&a.population, a.oracle.as_ref());
        let tb = true_accuracy(&b.population, b.oracle.as_ref());
        assert_eq!(ta, tb);
    }

    #[test]
    fn materialized_nell_has_content() {
        let (graph, gold) = DatasetProfile::nell().generate_materialized(5);
        assert_eq!(graph.num_clusters(), 817);
        assert_eq!(graph.total_triples(), 1860);
        assert_eq!(gold.num_clusters(), 817);
        let acc = true_accuracy(&graph, &gold);
        assert!((acc - 0.91).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "small profiles")]
    fn materializing_movie_full_is_rejected() {
        DatasetProfile::movie_full(0.9).generate_materialized(1);
    }
}

//! Adversarial scenario descriptors for the sweep harness.
//!
//! Every committed bench artifact before this module replayed one benign
//! movie-like profile. A [`Scenario`] instead composes the hostile axes
//! that stress the paper's guarantees independently:
//!
//! * **cluster-size skew** — bounded Zipf or Pareto tails (or degenerate
//!   uniform profiles), via [`SizeDistribution`];
//! * **accuracy drift** — per-batch true accuracy following a linear
//!   ramp, a step change, or a triangle-wave oscillation, via
//!   [`AccuracyDrift`];
//! * **bursty evolution** — insert bursts and churn bursts layered on the
//!   steady [`ChurnGenerator`] stream, via [`EventSchedule`];
//! * **annotator pathology** — correlated-error voting pools wrapping the
//!   gold oracle, via [`PoolSpec`] (see [`kg_annotate::PoolOracle`]);
//! * **heterogeneous costs** — per-predicate-class cost models collapsed
//!   to their exact expectation, via [`PredicateCosts`].
//!
//! [`Scenario::materialize`] turns a descriptor into concrete inputs —
//! base KG, event stream, label oracle, cost model — all deterministic in
//! a single seed, so every cell of the evaluator × engine sweep replays
//! bit-identically. [`Scenario::families`] is the committed matrix.

use crate::evolve::{ChurnGenerator, EventVolume, UpdateGenerator};
use crate::generator::{cluster_sizes, pareto_cluster_sizes};
use kg_annotate::oracle::{LabelOracle, RemOracle};
use kg_annotate::piecewise::PiecewiseOracle;
use kg_annotate::{AnnotatorProfile, CostModel, PoolOracle, TieBreak};
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::retract::KgEvent;
use std::sync::Arc;

/// Cluster-size profile of the base KG and its update batches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDistribution {
    /// The MOVIE profile (bounded Zipf, exponent 1.9, cap 4000,
    /// average cluster ≈ 9.2) — the benign reference shape.
    MovieZipf,
    /// Bounded Zipf with explicit shape, cap, and target mean size.
    Zipf {
        /// Zipf exponent (smaller → heavier tail).
        exponent: f64,
        /// Largest admissible cluster size.
        max_size: usize,
        /// Target mean cluster size (sets the cluster count).
        avg_size: f64,
    },
    /// Bounded Pareto: heavier than any Zipf profile here; `shape < 1`
    /// puts a macroscopic triple share into a handful of giant clusters.
    Pareto {
        /// Pareto tail index α.
        shape: f64,
        /// Largest admissible cluster size.
        max_size: usize,
        /// Target mean cluster size (sets the cluster count).
        avg_size: f64,
    },
    /// Every cluster the same size — the degenerate corners (one giant
    /// cluster via `size = total`, or all singletons via `size = 1`).
    Uniform {
        /// Common cluster size.
        size: u32,
    },
}

impl SizeDistribution {
    /// Cluster sizes totalling exactly `total_triples`, deterministic in
    /// `seed`.
    pub fn sizes(&self, total_triples: u64, seed: u64) -> Vec<u32> {
        assert!(total_triples > 0, "need at least one triple");
        let n_for = |avg: f64| {
            (((total_triples as f64 / avg).round() as usize).max(1)).min(total_triples as usize)
        };
        match *self {
            SizeDistribution::MovieZipf => {
                cluster_sizes(n_for(9.2), total_triples, 1.9, 4000, seed)
            }
            SizeDistribution::Zipf {
                exponent,
                max_size,
                avg_size,
            } => cluster_sizes(n_for(avg_size), total_triples, exponent, max_size, seed),
            SizeDistribution::Pareto {
                shape,
                max_size,
                avg_size,
            } => pareto_cluster_sizes(n_for(avg_size), total_triples, shape, max_size, seed),
            SizeDistribution::Uniform { size } => {
                let size = u64::from(size.max(1)).min(total_triples);
                let n = (total_triples / size).max(1);
                let base = total_triples / n;
                let rem = total_triples % n;
                (0..n).map(|i| (base + u64::from(i < rem)) as u32).collect()
            }
        }
    }

    /// Update-batch generator matching this profile's shape.
    fn update_generator(&self) -> UpdateGenerator {
        match *self {
            SizeDistribution::MovieZipf => UpdateGenerator::movie_like(),
            SizeDistribution::Zipf {
                exponent,
                max_size,
                avg_size,
            } => UpdateGenerator::new(exponent, max_size.max(2), avg_size.max(1.0)),
            // UpdateGenerator draws Zipf; α + 1 is the Zipf exponent whose
            // tail decay matches a Pareto of index α.
            SizeDistribution::Pareto {
                shape,
                max_size,
                avg_size,
            } => UpdateGenerator::new(shape + 1.0, max_size.max(2), avg_size.max(1.0)),
            SizeDistribution::Uniform { size } => UpdateGenerator::new(
                3.0,
                (size.max(1) as usize).saturating_mul(2).max(2),
                f64::from(size.max(1)),
            ),
        }
    }
}

/// Time-varying true accuracy: the value each update batch's oracle
/// segment is drawn at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccuracyDrift {
    /// Every batch at the scenario's base accuracy.
    None,
    /// Linear ramp from `from` (first batch) to `to` (last batch).
    Ramp {
        /// Accuracy of the first update batch.
        from: f64,
        /// Accuracy of the last update batch.
        to: f64,
    },
    /// Step change at a fixed batch index.
    Step {
        /// Accuracy before the step.
        before: f64,
        /// Accuracy from `at_batch` on.
        after: f64,
        /// First batch index at the post-step accuracy.
        at_batch: usize,
    },
    /// Triangle-wave oscillation (deterministic and platform-exact, unlike
    /// a trig wave): peaks at `center + amplitude` mid-period, troughs at
    /// `center − amplitude` at period boundaries.
    Oscillation {
        /// Mean accuracy.
        center: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Batches per full wave (min 2).
        period: usize,
    },
}

impl AccuracyDrift {
    /// Accuracy of batch `i` of `n`, given the scenario's base accuracy.
    pub fn batch_accuracy(&self, base: f64, i: usize, n: usize) -> f64 {
        let acc = match *self {
            AccuracyDrift::None => base,
            AccuracyDrift::Ramp { from, to } => {
                let t = if n <= 1 {
                    0.0
                } else {
                    i as f64 / (n - 1) as f64
                };
                from + (to - from) * t
            }
            AccuracyDrift::Step {
                before,
                after,
                at_batch,
            } => {
                if i < at_batch {
                    before
                } else {
                    after
                }
            }
            AccuracyDrift::Oscillation {
                center,
                amplitude,
                period,
            } => {
                let p = period.max(2);
                let frac = (i % p) as f64 / p as f64;
                let tri = 1.0 - 4.0 * (frac - 0.5).abs();
                center + amplitude * tri
            }
        };
        acc.clamp(0.0, 1.0)
    }
}

/// Event-stream shape: a steady insert/delete cadence with optional
/// insert bursts and churn bursts at fixed periods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventSchedule {
    /// Number of events in the stream.
    pub num_events: usize,
    /// Steady per-event insert volume as a fraction of the base KG.
    pub update_fraction: f64,
    /// Insert-burst period (`0` = never): every `burst_every`-th event
    /// inserts `burst_multiplier ×` the steady volume.
    pub burst_every: usize,
    /// Insert multiplier on burst events.
    pub burst_multiplier: u64,
    /// Steady deletes as a fraction of the event's insert volume.
    pub delete_fraction: f64,
    /// Churn-burst period (`0` = never).
    pub churn_burst_every: usize,
    /// On churn bursts, deletes as a fraction of the *base KG* size —
    /// deliberately large enough to gut whole strata.
    pub churn_burst_fraction: f64,
}

impl EventSchedule {
    /// A steady stream: `num_events` events of `update_fraction` each, no
    /// deletions, no bursts.
    pub fn steady(num_events: usize, update_fraction: f64) -> Self {
        EventSchedule {
            num_events,
            update_fraction,
            burst_every: 0,
            burst_multiplier: 1,
            delete_fraction: 0.0,
            churn_burst_every: 0,
            churn_burst_fraction: 0.0,
        }
    }

    /// Concrete per-event volumes for a base KG of `base_triples`.
    pub fn volumes(&self, base_triples: u64) -> Vec<EventVolume> {
        let steady = ((self.update_fraction * base_triples as f64).round() as u64).max(1);
        (0..self.num_events)
            .map(|i| {
                let burst = self.burst_every > 0 && (i + 1) % self.burst_every == 0;
                let churn_burst =
                    self.churn_burst_every > 0 && (i + 1) % self.churn_burst_every == 0;
                let insert = if burst {
                    steady * self.burst_multiplier.max(1)
                } else {
                    steady
                };
                let delete = if churn_burst {
                    (self.churn_burst_fraction * base_triples as f64).round() as u64
                } else {
                    (self.delete_fraction * insert as f64).round() as u64
                };
                EventVolume { insert, delete }
            })
            .collect()
    }
}

/// A correlated-error annotator pool layered over the gold oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSpec {
    /// Pool size (votes per triple).
    pub annotators: usize,
    /// Independent per-member flip rate.
    pub error_rate: f64,
    /// Shared-confusion rate ρ — the correlated component majority voting
    /// cannot suppress (see [`kg_annotate::AnnotatorPool::with_shared_confusion`]).
    pub shared_confusion: f64,
    /// Even-pool tie rule.
    pub tie: TieBreak,
}

impl PoolSpec {
    fn wrap(&self, oracle: Box<dyn LabelOracle + Send + Sync>, seed: u64) -> PoolOracle {
        let profiles = vec![
            AnnotatorProfile {
                speed: 1.0,
                error_rate: self.error_rate,
            };
            self.annotators.max(1)
        ];
        PoolOracle::new(oracle, profiles, seed ^ 0x9001)
            .with_tie_break(self.tie)
            .with_shared_confusion(self.shared_confusion)
    }
}

/// Per-predicate-class cost heterogeneity.
///
/// Clusters are assigned a cost class by a seeded hash (uniform over the
/// classes), modelling predicates whose facts are cheap (birth dates) or
/// expensive (filmography claims) to verify. The annotation engines charge
/// a single [`CostModel`]; [`PredicateCosts::effective`] collapses the
/// class mix to its exact expectation so the charged model equals the
/// scenario's mean cost — cell throughput numbers stay comparable while
/// the *composition* differs per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateCosts {
    /// One cost model per predicate class.
    pub models: Vec<CostModel>,
}

impl PredicateCosts {
    /// Three-class movie-like mix: cheap literals, default facts, and
    /// expensive multi-hop claims.
    pub fn movie_like() -> Self {
        PredicateCosts {
            models: vec![
                CostModel::new(15.0, 8.0),
                CostModel::new(45.0, 25.0),
                CostModel::new(120.0, 60.0),
            ],
        }
    }

    /// The cost class of `cluster` under `seed` (uniform seeded hash).
    pub fn class_of(&self, cluster: u32, seed: u64) -> usize {
        (splitmix_uniform(seed ^ 0xC057, u64::from(cluster)) * self.models.len() as f64) as usize
            % self.models.len()
    }

    /// The exact mean cost model over a uniform class mix.
    pub fn effective(&self) -> CostModel {
        assert!(!self.models.is_empty(), "need at least one cost class");
        let n = self.models.len() as f64;
        CostModel::new(
            self.models.iter().map(|m| m.c1).sum::<f64>() / n,
            self.models.iter().map(|m| m.c2).sum::<f64>() / n,
        )
    }
}

/// SplitMix64-based uniform in `[0, 1)` — local copy (the kg-annotate
/// equivalent is crate-private) used only for cost-class assignment.
fn splitmix_uniform(seed: u64, x: u64) -> f64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// One adversarial workload: the composition of all five hostile axes.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable scenario-family name (JSON key in the bench artifact).
    pub name: &'static str,
    /// Cluster-size profile.
    pub sizes: SizeDistribution,
    /// Base-KG true accuracy (update batches follow `drift`).
    pub base_accuracy: f64,
    /// Per-batch accuracy drift.
    pub drift: AccuracyDrift,
    /// Event-stream shape.
    pub schedule: EventSchedule,
    /// Optional correlated annotator pool wrapping the gold oracle.
    pub pool: Option<PoolSpec>,
    /// Optional heterogeneous per-predicate costs.
    pub costs: Option<PredicateCosts>,
}

/// A [`Scenario`] made concrete at a size and seed: the exact inputs the
/// sweep harness replays through every evaluator × engine cell.
pub struct MaterializedScenario {
    /// The base KG.
    pub base: ImplicitKg,
    /// The scheduled event stream over `base`.
    pub events: Vec<KgEvent>,
    /// Ground-truth oracle for base + all update segments (pool-resolved
    /// when the scenario has a [`PoolSpec`] — that *is* the estimand a
    /// crowd audit converges to).
    pub oracle: Arc<dyn LabelOracle + Send + Sync>,
    /// The cost model engines charge (class-mix expectation when the
    /// scenario has [`PredicateCosts`]).
    pub cost: CostModel,
    /// Accuracy each update batch's oracle segment was drawn at.
    pub batch_accuracies: Vec<f64>,
}

impl Scenario {
    /// Materialize at roughly `target_triples` base triples. Everything —
    /// sizes, events, labels, pool votes — is a pure function of `seed`.
    pub fn materialize(&self, target_triples: u64, seed: u64) -> MaterializedScenario {
        let sizes = self.sizes.sizes(target_triples, seed);
        let base = ImplicitKg::new(sizes).expect("scenario sizes are non-empty");

        let volumes = self.schedule.volumes(base.total_triples());
        let churn = ChurnGenerator::new(self.sizes.update_generator(), 0.0);
        let events = churn.events_with_schedule(&base, &volumes, seed);

        let n = events.len();
        let batch_accuracies: Vec<f64> = (0..n)
            .map(|i| self.drift.batch_accuracy(self.base_accuracy, i, n))
            .collect();

        let mut piecewise =
            PiecewiseOracle::new(Box::new(RemOracle::new(self.base_accuracy, seed)));
        let mut next_cluster = base.num_clusters() as u32;
        for (i, event) in events.iter().enumerate() {
            if let Some(batch) = event.inserted() {
                if batch.num_delta_clusters() > 0 {
                    piecewise.push_segment(
                        next_cluster,
                        Box::new(RemOracle::new(
                            batch_accuracies[i],
                            seed.wrapping_add(1000 + i as u64),
                        )),
                    );
                    next_cluster += batch.num_delta_clusters() as u32;
                }
            }
        }

        let oracle: Arc<dyn LabelOracle + Send + Sync> = match &self.pool {
            Some(spec) => Arc::new(spec.wrap(Box::new(piecewise), seed)),
            None => Arc::new(piecewise),
        };

        let cost = self
            .costs
            .as_ref()
            .map(PredicateCosts::effective)
            .unwrap_or_default();

        MaterializedScenario {
            base,
            events,
            oracle,
            cost,
            batch_accuracies,
        }
    }

    /// The committed scenario matrix: each family isolates one hostile
    /// axis against the benign baseline (plus the baseline itself).
    pub fn families() -> Vec<Scenario> {
        let benign = Scenario {
            name: "baseline",
            sizes: SizeDistribution::MovieZipf,
            base_accuracy: 0.9,
            drift: AccuracyDrift::None,
            schedule: EventSchedule::steady(6, 0.2),
            pool: None,
            costs: None,
        };
        vec![
            benign.clone(),
            Scenario {
                name: "heavy_tail_zipf",
                sizes: SizeDistribution::Zipf {
                    exponent: 1.1,
                    max_size: 2000,
                    avg_size: 20.0,
                },
                base_accuracy: 0.85,
                ..benign.clone()
            },
            Scenario {
                name: "pareto_tail",
                sizes: SizeDistribution::Pareto {
                    shape: 0.8,
                    max_size: 2000,
                    avg_size: 15.0,
                },
                base_accuracy: 0.85,
                ..benign.clone()
            },
            // The drift families bound cluster sizes (cap 60) so the drift
            // axis is isolated from the size-skew axis: a giant cluster
            // whose inclusion probability saturates (K·w/W ≥ 1) in the
            // weighted reservoir under-weights its (drifted, low-accuracy)
            // cohort in the plain-mean PPS estimate. Constant-accuracy
            // families keep unbounded tails — without a weight–accuracy
            // correlation saturation cannot bias the estimand.
            Scenario {
                name: "ramp_drift",
                sizes: SizeDistribution::Zipf {
                    exponent: 1.9,
                    max_size: 60,
                    avg_size: 9.2,
                },
                drift: AccuracyDrift::Ramp {
                    from: 0.95,
                    to: 0.6,
                },
                ..benign.clone()
            },
            Scenario {
                name: "step_drift",
                sizes: SizeDistribution::Zipf {
                    exponent: 1.9,
                    max_size: 60,
                    avg_size: 9.2,
                },
                drift: AccuracyDrift::Step {
                    before: 0.9,
                    after: 0.55,
                    at_batch: 3,
                },
                ..benign.clone()
            },
            Scenario {
                name: "oscillating_drift",
                sizes: SizeDistribution::Zipf {
                    exponent: 1.9,
                    max_size: 60,
                    avg_size: 9.2,
                },
                drift: AccuracyDrift::Oscillation {
                    center: 0.8,
                    amplitude: 0.15,
                    period: 4,
                },
                ..benign.clone()
            },
            Scenario {
                name: "burst_churn",
                schedule: EventSchedule {
                    num_events: 6,
                    update_fraction: 0.1,
                    burst_every: 3,
                    burst_multiplier: 5,
                    delete_fraction: 0.15,
                    churn_burst_every: 4,
                    churn_burst_fraction: 0.08,
                },
                ..benign.clone()
            },
            Scenario {
                name: "correlated_pool",
                pool: Some(PoolSpec {
                    annotators: 5,
                    error_rate: 0.1,
                    shared_confusion: 0.2,
                    tie: TieBreak::CoinFlip,
                }),
                ..benign.clone()
            },
            Scenario {
                name: "hetero_cost",
                costs: Some(PredicateCosts::movie_like()),
                ..benign
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::label_store::LabelStore;
    use kg_model::triple::TripleRef;

    fn fold(m: &MaterializedScenario) -> LabelStore {
        let mut store = LabelStore::materialize(&m.base, m.oracle.as_ref());
        for event in &m.events {
            if let Some(r) = event.retracted() {
                store.retract(r);
            }
            if let Some(b) = event.inserted() {
                store.extend_with_batch(b, m.oracle.as_ref());
            }
        }
        store
    }

    #[test]
    fn families_are_distinctly_named_and_materialize() {
        let families = Scenario::families();
        assert!(families.len() >= 6, "matrix needs ≥ 6 families");
        let mut names: Vec<&str> = families.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), families.len(), "duplicate scenario names");
        for s in &families {
            let m = s.materialize(2_000, 77);
            assert_eq!(m.base.total_triples(), 2_000, "{}", s.name);
            assert_eq!(m.events.len(), s.schedule.num_events, "{}", s.name);
            assert_eq!(m.batch_accuracies.len(), m.events.len());
            // The stream must fold cleanly over a label store (validity of
            // every retraction and insertion).
            let store = fold(&m);
            assert!(store.live_total_triples() > 0, "{}", s.name);
        }
    }

    #[test]
    fn materialization_is_deterministic_in_seed() {
        for s in Scenario::families() {
            let a = s.materialize(1_500, 5);
            let b = s.materialize(1_500, 5);
            assert_eq!(a.base.sizes(), b.base.sizes(), "{}", s.name);
            assert_eq!(a.events.len(), b.events.len());
            // Oracle labels replay bit-identically, pool votes included.
            let probe: Vec<bool> = (0..a.base.num_clusters() as u32)
                .map(|c| a.oracle.label(TripleRef::new(c, 0)))
                .collect();
            let probe_b: Vec<bool> = (0..b.base.num_clusters() as u32)
                .map(|c| b.oracle.label(TripleRef::new(c, 0)))
                .collect();
            assert_eq!(probe, probe_b, "{}", s.name);
            let c = s.materialize(1_500, 6);
            let probe_c: Vec<bool> = (0..c.base.num_clusters().min(a.base.num_clusters()) as u32)
                .map(|x| c.oracle.label(TripleRef::new(x, 0)))
                .collect();
            assert_ne!(
                probe[..probe_c.len()],
                probe_c[..],
                "{}: different seeds must differ",
                s.name
            );
        }
    }

    #[test]
    fn drift_schedules_shape_batch_accuracies() {
        let ramp = AccuracyDrift::Ramp { from: 1.0, to: 0.5 };
        assert!((ramp.batch_accuracy(0.9, 0, 6) - 1.0).abs() < 1e-12);
        assert!((ramp.batch_accuracy(0.9, 5, 6) - 0.5).abs() < 1e-12);
        assert!((ramp.batch_accuracy(0.9, 1, 6) - 0.9).abs() < 1e-12);
        // Single-batch ramp pins to `from`.
        assert!((ramp.batch_accuracy(0.9, 0, 1) - 1.0).abs() < 1e-12);

        let step = AccuracyDrift::Step {
            before: 0.9,
            after: 0.5,
            at_batch: 3,
        };
        assert_eq!(step.batch_accuracy(0.9, 2, 6), 0.9);
        assert_eq!(step.batch_accuracy(0.9, 3, 6), 0.5);

        let osc = AccuracyDrift::Oscillation {
            center: 0.8,
            amplitude: 0.1,
            period: 4,
        };
        // Triangle wave: trough at period boundary, peak mid-period.
        assert!((osc.batch_accuracy(0.8, 0, 8) - 0.7).abs() < 1e-12);
        assert!((osc.batch_accuracy(0.8, 2, 8) - 0.9).abs() < 1e-12);
        assert!((osc.batch_accuracy(0.8, 4, 8) - 0.7).abs() < 1e-12);
        // Everything clamps into [0, 1].
        let wild = AccuracyDrift::Ramp {
            from: 1.5,
            to: -0.5,
        };
        for i in 0..10 {
            let a = wild.batch_accuracy(0.9, i, 10);
            assert!((0.0..=1.0).contains(&a));
        }
        assert_eq!(AccuracyDrift::None.batch_accuracy(0.77, 3, 6), 0.77);
    }

    #[test]
    fn burst_schedules_spike_the_right_events() {
        let schedule = EventSchedule {
            num_events: 6,
            update_fraction: 0.1,
            burst_every: 3,
            burst_multiplier: 5,
            delete_fraction: 0.2,
            churn_burst_every: 4,
            churn_burst_fraction: 0.5,
        };
        let v = schedule.volumes(1_000);
        assert_eq!(v.len(), 6);
        // Steady events insert 100; events 3 and 6 (1-based) burst ×5.
        assert_eq!(
            v[0],
            EventVolume {
                insert: 100,
                delete: 20
            }
        );
        assert_eq!(
            v[2],
            EventVolume {
                insert: 500,
                delete: 100
            }
        );
        assert_eq!(
            v[5],
            EventVolume {
                insert: 500,
                delete: 100
            }
        );
        // Event 4 (1-based) churn-bursts: deletes half the base KG.
        assert_eq!(
            v[3],
            EventVolume {
                insert: 100,
                delete: 500
            }
        );
        // Steady schedule helper: no deletes, no bursts.
        for vol in EventSchedule::steady(4, 0.25).volumes(400) {
            assert_eq!(
                vol,
                EventVolume {
                    insert: 100,
                    delete: 0
                }
            );
        }
    }

    #[test]
    fn uniform_sizes_cover_the_degenerate_corners() {
        let single = SizeDistribution::Uniform { size: 500 }.sizes(500, 1);
        assert_eq!(single, vec![500]);
        let singletons = SizeDistribution::Uniform { size: 1 }.sizes(300, 1);
        assert_eq!(singletons.len(), 300);
        assert!(singletons.iter().all(|&s| s == 1));
        // Non-divisible totals distribute the remainder.
        let uneven = SizeDistribution::Uniform { size: 7 }.sizes(100, 1);
        assert_eq!(uneven.iter().map(|&s| u64::from(s)).sum::<u64>(), 100);
        assert!(uneven.iter().all(|&s| s == 7 || s == 8));
    }

    #[test]
    fn pool_scenarios_shift_the_estimand() {
        // ρ = 0.2 shared confusion over a 0.9-accurate base: the
        // pool-resolved accuracy must sit clearly below the gold accuracy.
        let families = Scenario::families();
        let pooled = families
            .iter()
            .find(|s| s.name == "correlated_pool")
            .unwrap();
        let plain = families.iter().find(|s| s.name == "baseline").unwrap();
        let mp = pooled.materialize(4_000, 3);
        let mb = plain.materialize(4_000, 3);
        let acc = |m: &MaterializedScenario| {
            let store = fold(m);
            store.true_accuracy()
        };
        let (pool_acc, gold_acc) = (acc(&mp), acc(&mb));
        assert!(
            pool_acc < gold_acc - 0.05,
            "pool {pool_acc} vs gold {gold_acc}"
        );
    }

    #[test]
    fn hetero_costs_collapse_to_the_exact_mean() {
        let costs = PredicateCosts::movie_like();
        let eff = costs.effective();
        assert!((eff.c1 - 60.0).abs() < 1e-12, "c1 {}", eff.c1);
        assert!((eff.c2 - 31.0).abs() < 1e-12, "c2 {}", eff.c2);
        // Class assignment: deterministic, in-range, and non-degenerate.
        let classes: Vec<usize> = (0..3000).map(|c| costs.class_of(c, 9)).collect();
        assert_eq!(
            classes,
            (0..3000).map(|c| costs.class_of(c, 9)).collect::<Vec<_>>()
        );
        for k in 0..costs.models.len() {
            let share = classes.iter().filter(|&&c| c == k).count() as f64 / 3000.0;
            assert!((share - 1.0 / 3.0).abs() < 0.05, "class {k} share {share}");
        }
    }
}

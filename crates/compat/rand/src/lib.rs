//! Offline shim for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the exact API subset the workspace uses — `RngCore`, `SeedableRng`, the
//! `Rng` extension trait (`gen`, `gen_range`, `gen_bool`) and
//! `rngs::StdRng` — with upstream-compatible paths and signatures.
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64
//! (Blackman–Vigna). It is deterministic given a seed but **not**
//! bit-compatible with upstream's ChaCha12-based `StdRng`; every seeded
//! test in this workspace is calibrated against this implementation.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, a byte array of generator-specific length.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same convention upstream `rand` documents for this method.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's full output.
///
/// Mirror of sampling from upstream's `Standard` distribution via
/// [`Rng::gen`]: floats are uniform in `[0, 1)`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Integer types supporting uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `lo <= hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased uniform `u64` in `[0, span)` by rejection (Lemire-style widening).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the multiply-shift map exactly uniform.
    uniform_u64_with_zone(rng, span, span.wrapping_neg() % span)
}

/// Core of [`uniform_u64`] with the rejection zone precomputed — shared
/// with [`distributions::Uniform`] so the two are stream-identical by
/// construction, not by parallel maintenance.
#[inline]
fn uniform_u64_with_zone<R: RngCore + ?Sized>(rng: &mut R, span: u64, zone: u64) -> u64 {
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as Self)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width 64-bit range: every output is valid.
                    return rng.next_u64() as Self;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as Self)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods on any [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (floats uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution types (mirror of `rand::distributions`).
pub mod distributions {
    use super::{RngCore, UniformInt};

    /// A distribution that can be sampled with any RNG.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform integer distribution over `[lo, hi)` with the rejection
    /// zone precomputed once — `gen_range` pays a 64-bit modulo on every
    /// call, which dominates tight rejection-sampling loops that draw from
    /// the same range millions of times. Consumes the RNG stream
    /// identically to `gen_range(lo..hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        span: u64,
        zone: u64,
    }

    impl<T: UniformInt + TryInto<i128> + Copy> Uniform<T> {
        /// Uniform over `[lo, hi)`; `lo < hi` must hold.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "cannot sample empty range");
            let (l, h) = (
                lo.try_into().ok().expect("integer fits i128"),
                hi.try_into().ok().expect("integer fits i128"),
            );
            let span = (h - l) as u64;
            Uniform {
                lo,
                span,
                zone: span.wrapping_neg() % span,
            }
        }
    }

    impl<T: UniformInt + super::WideningFromU64> Distribution<T> for Uniform<T> {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            self.lo
                .wrapping_add_u64(super::uniform_u64_with_zone(rng, self.span, self.zone))
        }
    }
}

/// Integers that can absorb a `u64` offset by wrapping addition (support
/// for [`distributions::Uniform`]).
pub trait WideningFromU64: Copy {
    /// `self + offset`, wrapping.
    fn wrapping_add_u64(self, offset: u64) -> Self;
}

macro_rules! impl_widening {
    ($($t:ty),*) => {$(
        impl WideningFromU64 for $t {
            #[inline]
            fn wrapping_add_u64(self, offset: u64) -> Self {
                self.wrapping_add(offset as Self)
            }
        }
    )*};
}

impl_widening!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Deterministic given a seed; **not** bit-compatible with upstream
    /// `rand::rngs::StdRng` (ChaCha12).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The generator's exact internal state — the "RNG cursor" a
        /// monitor checkpoint records so a restored session resumes the
        /// random stream at the precise word where the original stopped.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a captured [`Self::state`]. The
        /// all-zero state (invalid for xoshiro, and never produced by a
        /// seeded generator) is remapped exactly as `from_seed` does, so a
        /// zeroed or hostile checkpoint still yields a working generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                return StdRng {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0xBF58_476D_1CE4_E5B9,
                        0x94D0_49BB_1331_11EB,
                        0x2545_F491_4F6C_DD1D,
                    ],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro forbids the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_given_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn uniform_distribution_is_stream_identical_to_gen_range() {
            use crate::distributions::{Distribution, Uniform};
            // Same seed, same range → same values AND same stream position
            // afterwards, including spans that force rejections.
            for span in [1usize, 7, 1000, 1_000_000, usize::MAX / 2 + 3] {
                let mut a = StdRng::seed_from_u64(9);
                let mut b = StdRng::seed_from_u64(9);
                let dist = Uniform::new(0usize, span);
                for _ in 0..200 {
                    assert_eq!(a.gen_range(0..span), dist.sample(&mut b), "span {span}");
                }
                assert_eq!(a.next_u64(), b.next_u64(), "stream diverged, span {span}");
            }
        }

        #[test]
        fn state_round_trip_resumes_stream_exactly() {
            let mut a = StdRng::seed_from_u64(314);
            for _ in 0..37 {
                a.next_u64();
            }
            let mut b = StdRng::from_state(a.state());
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            // All-zero state is remapped, not propagated.
            let mut z = StdRng::from_state([0; 4]);
            assert_ne!(z.next_u64(), 0);
        }

        #[test]
        fn distinct_seeds_diverge() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            assert_ne!(
                (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
                (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn gen_range_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..10_000 {
                let x = rng.gen_range(3usize..17);
                assert!((3..17).contains(&x));
                let y = rng.gen_range(0..=5u32);
                assert!(y <= 5);
                let f = rng.gen_range(-2.0f64..3.0);
                assert!((-2.0..3.0).contains(&f));
            }
        }

        #[test]
        fn gen_f64_unit_interval() {
            let mut rng = StdRng::seed_from_u64(11);
            let mean: f64 = (0..50_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 50_000.0;
            assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        }
    }
}

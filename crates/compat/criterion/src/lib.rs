//! Offline shim for the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! Provides the API subset this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! fixed-sample wall-clock measurement loop and a plain-text report instead
//! of upstream's statistical analysis and HTML output.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _parent: self,
        };
        println!("group {}", group.name);
        group
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let n = self.default_sample_size;
        run_one(&id.to_string(), n, f);
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (upstream parity; the shim reports per-benchmark).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording `samples` wall-clock measurements after
    /// one untimed warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.results.clear();
        self.results.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut bencher);
    if bencher.results.is_empty() {
        println!("  {label}: no measurements");
        return;
    }
    let total: Duration = bencher.results.iter().sum();
    let mean = total / bencher.results.len() as u32;
    let min = bencher.results.iter().min().expect("non-empty");
    let max = bencher.results.iter().max().expect("non-empty");
    println!(
        "  {label}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        bencher.results.len()
    );
}

/// Declares a group of benchmark functions (upstream-compatible simple form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Test-runner plumbing: per-case deterministic RNG, config, and the
//! case-level error type the assertion macros return.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject(String),
    /// `prop_assert!`-family failure; the test panics with this message.
    Fail(String),
}

/// Deterministic per-case RNG: seeded from the FNV-1a hash of the test's
/// full path combined with the case index, so failures reproduce exactly
/// across runs and machines without a persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(case);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full domain of `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes; avoids NaN/inf,
        // which the statistical code under test rejects by contract.
        let mag = rng.gen::<f64>() * 2.0 - 1.0;
        let exp = rng.gen_range(-30i32..30) as f64;
        mag * exp.exp2()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps string-handling tests readable.
        rng.gen_range(0x20u32..0x7f) as u8 as char
    }
}

//! Collection strategies (mirror of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Number-of-elements specification for [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

//! Offline shim for the [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! Provides the API subset this workspace's property tests use, with
//! upstream-compatible paths: the [`proptest!`] macro (including
//! `#![proptest_config(...)]`), the assertion macros, [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`, range / [`strategy::Just`] / tuple /
//! `Vec` strategies, [`arbitrary::any`], and [`collection::vec`].
//!
//! Differences from upstream, by design: no shrinking (a failure reports the
//! deterministic case index and the generated inputs instead), and case
//! seeds derive from the test's module path + name, so every run is
//! reproducible without a persistence file.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests over generated inputs.
///
/// Supports the upstream surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(40))]
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); ) => {};
    (@impl ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} of {}: {}", stringify!($name), msg);
                    }
                }
            }
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                left, right
            )));
        }
    }};
}

/// Skips the current test case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

//! The [`Strategy`] trait and combinators: ranges, [`Just`], tuples,
//! `Vec`-of-strategies, `prop_map`, and `prop_flat_map`.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream, generation is direct (no intermediate `ValueTree`) and
/// there is no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn ErasedStrategy<T>>,
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.erased_generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// A `Vec` of strategies generates element-wise (upstream parity).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Fixed-size arrays of strategies generate element-wise.
impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

//! Cross-process smoke test: the signature invariant of the serving
//! layer. A monitor driven over HTTP, checkpointed mid-stream, and
//! restored in a **fresh server process** produces byte-identical
//! estimates to the uninterrupted run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

struct Server {
    child: Child,
    addr: String,
    lines: std::io::Lines<BufReader<ChildStdout>>,
    stdin: Option<ChildStdin>,
}

impl Server {
    fn spawn() -> Server {
        Server::spawn_with(&[], false)
    }

    fn spawn_with(extra_args: &[&str], piped_stdin: bool) -> Server {
        let mut command = Command::new(env!("CARGO_BIN_EXE_kg-serve"));
        command
            .args(["--addr", "127.0.0.1:0", "--workers", "2"])
            .args(extra_args)
            .stdout(Stdio::piped());
        if piped_stdin {
            command.stdin(Stdio::piped());
        }
        let mut child = command.spawn().expect("spawn kg-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let stdin = child.stdin.take();
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("kg-serve announces its address")
            .expect("readable stdout");
        let addr = line
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line}"))
            .to_string();
        Server {
            child,
            addr,
            lines,
            stdin,
        }
    }

    /// Close the child's stdin pipe (the `--drain-on-stdin-eof` signal).
    fn close_stdin(&mut self) {
        self.stdin.take();
    }

    /// Wait for the `DRAINED <n>` announcement and process exit; returns
    /// the persisted-session count.
    fn wait_drained(mut self) -> usize {
        let drained = loop {
            let line = self
                .lines
                .next()
                .expect("kg-serve announces the drain before exiting")
                .expect("readable stdout");
            if let Some(n) = line.strip_prefix("DRAINED ") {
                break n.parse().expect("drained count");
            }
        };
        let status = self.child.wait().expect("wait for kg-serve");
        assert!(status.success(), "drained server must exit cleanly");
        drained
    }

    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: kg-serve\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let body = response
            .split_once("\r\n\r\n")
            .expect("header/body separator")
            .1
            .to_string();
        (status, body)
    }

    fn ok(&self, method: &str, path: &str, body: &str) -> String {
        let (status, body) = self.request(method, path, body);
        assert_eq!(status, 200, "{method} {path}: {body}");
        body
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Pull a `"key":"value"` string field out of a flat JSON response.
fn str_field(body: &str, key: &str) -> String {
    let tag = format!("\"{key}\":\"");
    let start = body.find(&tag).unwrap_or_else(|| panic!("{key} in {body}")) + tag.len();
    let end = body[start..].find('"').expect("closing quote") + start;
    body[start..end].to_string()
}

fn num_field(body: &str, key: &str) -> String {
    let tag = format!("\"{key}\":");
    let start = body.find(&tag).unwrap_or_else(|| panic!("{key} in {body}")) + tag.len();
    let end = body[start..].find([',', '}']).expect("field terminator") + start;
    body[start..end].to_string()
}

const SPEC: &str = r#"{"kind":"reservoir","capacity":50,"engine":"hash","m":5,"seed":20190923,"oracle_accuracy":0.9,"oracle_seed":17,"base_sizes":[SIZES]}"#;

fn spec() -> String {
    let sizes: Vec<String> = (0..300).map(|i| (1 + i % 8).to_string()).collect();
    SPEC.replace("SIZES", &sizes.join(","))
}

/// The scripted stream: inserts and churn, one event per request.
fn stream() -> Vec<(&'static str, String)> {
    vec![
        ("batch", r#"{"batches":[[3,3,3,3,3,3,3,3,3,3,3,3]]}"#.to_string()),
        (
            "events",
            r#"{"events":[{"op":"retract","entries":[{"cluster":301,"offsets":[0,1]}]}]}"#.to_string(),
        ),
        (
            "events",
            r#"{"events":[{"op":"revise","entries":[{"cluster":305,"offsets":[2]}],"sizes":[4,4,4,4,4]}]}"#
                .to_string(),
        ),
        ("batch", r#"{"batches":[[2,2,2,2,2,2,2,2]]}"#.to_string()),
    ]
}

fn estimate_bits(body: &str) -> (String, String, String) {
    (
        str_field(body, "mean_bits"),
        str_field(body, "var_bits"),
        num_field(body, "units"),
    )
}

#[test]
fn checkpoint_kill_restore_is_byte_identical_across_processes() {
    // Uninterrupted reference run.
    let reference = Server::spawn();
    let body = reference.ok("POST", "/kg", &spec());
    let ref_id = num_field(&body, "id");
    let mut want = Vec::new();
    for (endpoint, payload) in stream() {
        let body = reference.ok("POST", &format!("/kg/{ref_id}/{endpoint}"), &payload);
        want.push(estimate_bits(&body));
    }
    let final_reference =
        estimate_bits(&reference.ok("GET", &format!("/kg/{ref_id}/estimate"), ""));
    reference.kill();

    // Interrupted run: two events, checkpoint, kill the process.
    let first = Server::spawn();
    let body = first.ok("POST", "/kg", &spec());
    let id = num_field(&body, "id");
    let mut got = Vec::new();
    for (endpoint, payload) in &stream()[..2] {
        let body = first.ok("POST", &format!("/kg/{id}/{endpoint}"), payload);
        got.push(estimate_bits(&body));
    }
    let checkpoint = str_field(
        &first.ok("POST", &format!("/kg/{id}/checkpoint"), ""),
        "checkpoint",
    );
    first.kill();

    // Fresh process: restore and replay the tail of the stream.
    let second = Server::spawn();
    let body = second.ok(
        "POST",
        "/kg",
        &format!(r#"{{"checkpoint":"{checkpoint}"}}"#),
    );
    let id = num_field(&body, "id");
    for (endpoint, payload) in &stream()[2..] {
        let body = second.ok("POST", &format!("/kg/{id}/{endpoint}"), payload);
        got.push(estimate_bits(&body));
    }
    assert_eq!(got, want, "estimate stream diverged after restore");
    let final_restored = estimate_bits(&second.ok("GET", &format!("/kg/{id}/estimate"), ""));
    assert_eq!(final_restored, final_reference);

    // The audit endpoint works over the evolved population and is
    // deterministic for a fixed seed.
    let a = second.ok("GET", &format!("/kg/{id}/audit?units=300&seed=7"), "");
    let b = second.ok("GET", &format!("/kg/{id}/audit?units=300&seed=7"), "");
    assert_eq!(str_field(&a, "mean_bits"), str_field(&b, "mean_bits"));
    second.kill();
}

#[test]
fn server_survives_hostile_requests() {
    let server = Server::spawn();
    let (status, _) = server.request("POST", "/kg", "not json at all");
    assert_eq!(status, 400);
    let (status, _) = server.request("GET", "/kg/12345/estimate", "");
    assert_eq!(status, 404);
    let (status, _) = server.request("POST", "/kg", r#"{"checkpoint":"00ff00ff"}"#);
    assert_eq!(
        status, 400,
        "garbage checkpoint is a typed 400, not a crash"
    );
    let (status, _) = server.request("DELETE", "/kg", "");
    assert_eq!(status, 404);
    // Raw garbage on the socket.
    let mut stream = TcpStream::connect(&server.addr).expect("connect");
    stream.write_all(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    // And the server still answers.
    let body = server.ok("GET", "/healthz", "");
    assert!(body.contains("true"));
    server.kill();
}

#[test]
fn graceful_drain_and_restart_recover_every_session() {
    let dir = std::env::temp_dir().join(format!("kg-serve-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let state = dir.to_str().expect("utf8 temp path").to_string();

    // First life: three tenants, some churn, then an HTTP-triggered drain.
    let first = Server::spawn_with(&["--state-dir", &state], false);
    let mut ids = Vec::new();
    for seed in [1, 2, 3] {
        let body = first.ok(
            "POST",
            "/kg",
            &spec().replace("20190923", &seed.to_string()),
        );
        ids.push(num_field(&body, "id"));
    }
    for id in &ids {
        for (endpoint, payload) in &stream()[..2] {
            first.ok("POST", &format!("/kg/{id}/{endpoint}"), payload);
        }
    }
    let want: Vec<_> = ids
        .iter()
        .map(|id| estimate_bits(&first.ok("GET", &format!("/kg/{id}/estimate"), "")))
        .collect();
    let body = first.ok("POST", "/admin/drain", "");
    assert!(body.contains("true"), "{body}");
    assert_eq!(first.wait_drained(), 3, "drain must checkpoint all tenants");

    // Second life: everything is back, byte-identical, and still serving.
    let mut second = Server::spawn_with(&["--state-dir", &state, "--drain-on-stdin-eof"], true);
    let listed = second.ok("GET", "/kg", "");
    for id in &ids {
        assert!(
            listed.contains(id.as_str()),
            "session {id} missing after restart: {listed}"
        );
    }
    let got: Vec<_> = ids
        .iter()
        .map(|id| estimate_bits(&second.ok("GET", &format!("/kg/{id}/estimate"), "")))
        .collect();
    assert_eq!(got, want, "restart changed served estimates");
    // The revived tenants still advance their streams.
    for id in &ids {
        let (endpoint, payload) = &stream()[2];
        second.ok("POST", &format!("/kg/{id}/{endpoint}"), payload);
    }
    // Second drain signal: stdin EOF (the process-signal stand-in).
    second.close_stdin();
    assert_eq!(second.wait_drained(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

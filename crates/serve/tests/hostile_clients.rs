//! Hostile-client regressions: slowloris dribbles, oversized payloads,
//! peers that never read, and load shedding. Every scenario must
//! terminate within the configured deadlines with the right status, and
//! the registry must stay consistent throughout.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

const READ_TIMEOUT_MS: u64 = 400;

struct Server {
    child: Child,
    addr: String,
    #[allow(dead_code)]
    lines: std::io::Lines<BufReader<ChildStdout>>,
}

impl Server {
    fn spawn(extra_args: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_kg-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--read-timeout-ms",
                &READ_TIMEOUT_MS.to_string(),
                "--write-timeout-ms",
                &READ_TIMEOUT_MS.to_string(),
            ])
            .args(extra_args)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn kg-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("kg-serve announces its address")
            .expect("readable stdout");
        let addr = line
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line}"))
            .to_string();
        Server { child, addr, lines }
    }

    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: kg-serve\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        read_status_and_body(stream)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn read_status_and_body(mut stream: TcpStream) -> (u16, String) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn register_spec() -> String {
    let sizes: Vec<String> = (0..60).map(|i| (1 + i % 5).to_string()).collect();
    format!(
        r#"{{"kind":"reservoir","capacity":30,"m":4,"seed":7,"oracle_accuracy":0.9,"oracle_seed":2,"base_sizes":[{}]}}"#,
        sizes.join(",")
    )
}

/// Deadline bound every hostile exchange must respect: the server's read
/// deadline plus generous slack for process scheduling.
fn deadline() -> Duration {
    Duration::from_millis(READ_TIMEOUT_MS * 10)
}

#[test]
fn hostile_clients_are_bounded_and_do_not_wedge_the_server() {
    let server = Server::spawn(&[]);
    // A real tenant registered before the abuse; it must survive intact.
    let (status, body) = server.request("POST", "/kg", &register_spec());
    assert_eq!(status, 200, "{body}");

    // 1. Partial request line, then silence: 408 within the deadline.
    let start = Instant::now();
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    stream.write_all(b"GET /hea").unwrap();
    let (status, _) = read_status_and_body(stream);
    assert_eq!(status, 408, "silent partial request line");
    assert!(start.elapsed() < deadline(), "{:?}", start.elapsed());

    // 2. Header dribble: one header byte per 50ms forever. A per-read
    //    timeout would never fire; the whole-exchange deadline must.
    let start = Instant::now();
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let reader = stream.try_clone().unwrap();
    let dribbler = std::thread::spawn(move || {
        for b in b"x-slow: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
            .iter()
            .cycle()
        {
            if stream.write_all(std::slice::from_ref(b)).is_err() {
                return; // server gave up on us — mission accomplished
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    let (status, _) = read_status_and_body(reader);
    assert_eq!(status, 408, "header dribble");
    assert!(start.elapsed() < deadline(), "{:?}", start.elapsed());
    dribbler.join().unwrap();

    // 3. Oversized declared body: 413 immediately, nothing read.
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    stream
        .write_all(b"POST /kg HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n")
        .unwrap();
    let (status, _) = read_status_and_body(stream);
    assert_eq!(status, 413, "oversized declared body");

    // 4. Oversized request line: 413, not an unbounded buffer.
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 * 1024));
    stream.write_all(long.as_bytes()).unwrap();
    let (status, _) = read_status_and_body(stream);
    assert_eq!(status, 413, "oversized request line");

    // 5. Body shorter than content-length, then silence: 408.
    let start = Instant::now();
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    stream
        .write_all(b"POST /kg HTTP/1.1\r\ncontent-length: 1000\r\n\r\n{\"partial\":")
        .unwrap();
    let (status, _) = read_status_and_body(stream);
    assert_eq!(status, 408, "truncated body");
    assert!(start.elapsed() < deadline(), "{:?}", start.elapsed());

    // 6. A peer that sends a valid request but never reads the response:
    //    the write deadline cuts it off; nothing wedges.
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    // Hold the socket open without reading while the server times out.
    std::thread::sleep(Duration::from_millis(100));
    drop(stream);

    // The server is still fully functional and the tenant is untouched.
    let (status, listed) = server.request("GET", "/kg", "");
    assert_eq!(status, 200);
    assert!(listed.contains('1'), "tenant lost after abuse: {listed}");
    let (status, body) = server.request("GET", "/kg/1/estimate", "");
    assert_eq!(status, 200, "{body}");
    let (status, stats) = server.request("GET", "/admin/stats", "");
    assert_eq!(status, 200);
    let timeouts: u64 = {
        let tag = "\"timeouts\":";
        let start = stats.find(tag).expect("timeouts counter") + tag.len();
        let end = stats[start..].find([',', '}']).unwrap() + start;
        stats[start..end].trim().parse().expect("numeric timeouts")
    };
    assert!(timeouts >= 3, "expected ≥3 deadline trips, got {stats}");
}

#[test]
fn load_shedding_answers_503_with_retry_after() {
    // max-in-flight 0 sheds every request deterministically.
    let server = Server::spawn(&["--max-in-flight", "0"]);
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 503 "),
        "wanted shed, got {response}"
    );
    assert!(
        response.to_ascii_lowercase().contains("retry-after: 1"),
        "missing retry-after: {response}"
    );
}

//! Minimal JSON: a value tree, a strict recursive-descent parser, and a
//! writer. Hand-rolled — the build environment is offline, so no serde.
//!
//! Numbers are `f64`; every integer the service exchanges (ids, sizes,
//! counters) stays well under 2⁵³, and the byte-exact quantities (estimate
//! mean/variance) travel as hex bit-pattern *strings*, never as numbers.

use std::fmt;

/// Maximum nesting depth the parser accepts (hostile-input guard).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: what was expected, and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser was expecting.
    pub what: &'static str,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: expected {}",
            self.at, self.what
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer. Bounded at
    /// 2^53 − 1 (the largest safe integer): 2^53 itself is excluded
    /// because 2^53 + 1 rounds to it during parsing, so accepting it
    /// would silently admit a collided value.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_991e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact serialization (`to_string()` emits wire-ready JSON).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// content rejected).
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("end of input"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { what, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("shallower nesting"));
        }
        match self.peek() {
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn literal(&mut self, text: &'static [u8], value: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("a JSON literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| self.err("a number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("a number"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(self.err("a finite number"))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "a string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("a closing quote")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs unsupported; reject rather
                            // than emit garbage.
                            let c = char::from_u32(code as u32)
                                .ok_or_else(|| self.err("a valid unicode escape"))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("no raw control characters")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.input[self.pos..])
                        .map_err(|_| self.err("valid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("a character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("four hex digits")),
            };
            code = code << 4 | u16::from(digit);
            self.pos += 1;
        }
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "an array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "an object")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = br#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        let again = parse(v.to_string().as_bytes()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn integers_survive_exactly() {
        let v = parse(b"[0, 1, 4503599627370495, 20190923]").unwrap();
        let ints: Vec<u64> = v
            .as_array()
            .unwrap()
            .iter()
            .map(|j| j.as_u64().unwrap())
            .collect();
        assert_eq!(ints, vec![0, 1, 4503599627370495, 20190923]);
        assert_eq!(v.to_string(), "[0,1,4503599627370495,20190923]");
    }

    #[test]
    fn rejects_hostile_input() {
        assert!(parse(b"").is_err());
        assert!(parse(b"{").is_err());
        assert!(parse(b"[1,]").is_err());
        assert!(parse(b"\"unterminated").is_err());
        assert!(parse(b"nulL").is_err());
        assert!(parse(b"{}extra").is_err());
        assert!(parse(b"1e999").is_err(), "infinite numbers rejected");
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(deep.as_bytes()).is_err(), "depth-limited");
    }

    #[test]
    fn fractional_and_bool_accessors_are_strict() {
        let v = parse(b"{\"x\": 1.5, \"y\": -2}").unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), None);
        assert_eq!(v.get("y").unwrap().as_u64(), None);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }
}

//! Route dispatch: HTTP requests → [`SessionRegistry`] calls → JSON.
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /kg` | Register a session from a spec, **or** restore one from a `checkpoint` payload |
//! | `GET /kg` | List live session ids |
//! | `POST /kg/{id}/batch` | Apply insert batches |
//! | `POST /kg/{id}/events` | Apply interleaved insert/retract/revise events |
//! | `GET /kg/{id}/estimate` | Live accuracy estimate + MoE |
//! | `POST /kg/{id}/checkpoint` | Serialize the session (`KGSN` v1, hex) |
//! | `GET /kg/{id}/audit?units=&seed=` | Full-fidelity sharded audit |
//! | `GET /healthz` | Liveness |
//!
//! The server layer (`crate::Server`) additionally answers
//! `POST /admin/drain` (graceful shutdown) and `GET /admin/stats`
//! (serving + lifecycle counters) before requests reach this dispatcher.
//!
//! Estimate responses carry `mean_bits` / `var_bits` — the exact `f64`
//! bit patterns in hex — so clients can byte-diff estimate streams
//! without worrying about decimal round-tripping.

use crate::http::Request;
use crate::json::{parse, Json};
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::reservoir::OfferMode;
use kg_eval::session::{
    Engine, EstimateReport, EvaluatorKind, SessionError, SessionRegistry, SessionSpec,
};
use kg_eval::ShardReplayReport;
use kg_model::retract::{KgEvent, Retraction};
use kg_model::update::UpdateBatch;
use kg_model::KgError;

/// Encode bytes as lowercase hex.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode lowercase/uppercase hex into bytes.
pub fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi << 4 | lo) as u8);
    }
    Some(out)
}

fn err_json(message: impl Into<String>) -> Json {
    Json::Obj(vec![("error".to_string(), Json::Str(message.into()))])
}

fn status_of(e: &SessionError) -> u16 {
    match e {
        SessionError::UnknownSession(_) => 404,
        _ => 400,
    }
}

/// Status for an operation on an *existing* session id. Here a codec or
/// spill failure is not a bad request — it means the session's spill
/// record was torn or lost, the server dropped the session, and the
/// client should restore from its own checkpoint: 500, then 404.
fn status_of_session_op(e: &SessionError) -> u16 {
    match e {
        SessionError::UnknownSession(_) => 404,
        SessionError::Codec(_) | SessionError::Spill(_) | SessionError::NoStore => 500,
        _ => 400,
    }
}

fn estimate_json(r: &EstimateReport) -> Json {
    Json::Obj(vec![
        ("mean".into(), Json::Num(r.mean)),
        (
            "mean_bits".into(),
            Json::Str(format!("{:016x}", r.mean.to_bits())),
        ),
        ("var_of_mean".into(), Json::Num(r.var_of_mean)),
        (
            "var_bits".into(),
            Json::Str(format!("{:016x}", r.var_of_mean.to_bits())),
        ),
        ("units".into(), Json::Num(r.units as f64)),
        ("moe".into(), Json::Num(r.moe)),
        ("saturated".into(), Json::Bool(r.saturated)),
        ("live_triples".into(), Json::Num(r.live_triples as f64)),
        ("events_applied".into(), Json::Num(r.events_applied as f64)),
        (
            "cumulative_cost_seconds".into(),
            Json::Num(r.cumulative_cost_seconds),
        ),
    ])
}

fn audit_json(r: &ShardReplayReport) -> Json {
    Json::Obj(vec![
        ("design".into(), Json::Str(r.design.to_string())),
        ("units".into(), Json::Num(r.units as f64)),
        ("shards".into(), Json::Num(r.shards as f64)),
        ("mean".into(), Json::Num(r.estimate.mean)),
        (
            "mean_bits".into(),
            Json::Str(format!("{:016x}", r.estimate.mean.to_bits())),
        ),
        ("var_of_mean".into(), Json::Num(r.estimate.var_of_mean)),
        (
            "var_bits".into(),
            Json::Str(format!("{:016x}", r.estimate.var_of_mean.to_bits())),
        ),
        ("labeled".into(), Json::Num(r.labeled as f64)),
        ("cost_seconds".into(), Json::Num(r.cost_seconds)),
    ])
}

fn u32_list(value: &Json, what: &'static str) -> Result<Vec<u32>, String> {
    let items = value
        .as_array()
        .ok_or_else(|| format!("{what} must be an array"))?;
    items
        .iter()
        .map(|j| {
            j.as_u64()
                .filter(|&n| n <= u64::from(u32::MAX))
                .map(|n| n as u32)
                .ok_or_else(|| format!("{what} entries must be u32 integers"))
        })
        .collect()
}

/// A numeric field that is allowed to be absent but, when present, must
/// be a JSON-exact integer (≤ 2^53 — the IEEE-double limit every JSON
/// stack shares). Silently defaulting a malformed or out-of-range value
/// would register a *different monitor* than the client asked for.
fn opt_u64(doc: &Json, key: &'static str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key} must be an integer in [0, 2^53)")),
    }
}

fn opt_f64(doc: &Json, key: &'static str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("{key} must be a number")),
    }
}

fn spec_from_json(doc: &Json) -> Result<SessionSpec, String> {
    let kind = match doc.get("kind").and_then(Json::as_str) {
        Some("reservoir") => EvaluatorKind::Reservoir {
            capacity: opt_u64(doc, "capacity")?.ok_or("reservoir specs need a capacity")? as usize,
        },
        Some("stratified") => EvaluatorKind::Stratified,
        _ => return Err("kind must be \"reservoir\" or \"stratified\"".into()),
    };
    let engine = match doc.get("engine").and_then(Json::as_str) {
        None | Some("hash") => Engine::Hash,
        Some("dense") => Engine::Dense,
        Some(_) => return Err("engine must be \"hash\" or \"dense\"".into()),
    };
    let offer_mode = match doc.get("offer_mode").and_then(Json::as_str) {
        None | Some("batched") => OfferMode::Batched,
        Some("per_item") => OfferMode::PerItem,
        Some(_) => return Err("offer_mode must be \"batched\" or \"per_item\"".into()),
    };
    let defaults = EvalConfig::default();
    let config = EvalConfig {
        alpha: opt_f64(doc, "alpha")?.unwrap_or(defaults.alpha),
        target_moe: opt_f64(doc, "target_moe")?.unwrap_or(defaults.target_moe),
        batch_size: opt_u64(doc, "batch_size")?.unwrap_or(defaults.batch_size as u64) as usize,
        min_units: opt_u64(doc, "min_units")?.unwrap_or(defaults.min_units as u64) as usize,
        max_units: opt_u64(doc, "max_units")?.unwrap_or(defaults.max_units as u64) as usize,
    };
    Ok(SessionSpec {
        kind,
        engine,
        offer_mode,
        m: opt_u64(doc, "m")?.unwrap_or(5) as usize,
        config,
        seed: opt_u64(doc, "seed")?.unwrap_or(0),
        oracle_accuracy: opt_f64(doc, "oracle_accuracy")?.ok_or("oracle_accuracy is required")?,
        oracle_seed: opt_u64(doc, "oracle_seed")?.unwrap_or(0),
        base_sizes: u32_list(
            doc.get("base_sizes").ok_or("base_sizes is required")?,
            "base_sizes",
        )?,
    })
}

fn retraction_from_json(value: &Json) -> Result<Retraction, String> {
    let entries = value
        .as_array()
        .ok_or("entries must be an array")?
        .iter()
        .map(|entry| {
            let cluster = entry
                .get("cluster")
                .and_then(Json::as_u64)
                .filter(|&n| n <= u64::from(u32::MAX))
                .ok_or("each entry needs a u32 cluster")? as u32;
            let offsets = u32_list(
                entry.get("offsets").ok_or("each entry needs offsets")?,
                "offsets",
            )?;
            Ok((cluster, offsets))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Retraction::new(entries).map_err(|e: KgError| e.to_string())
}

fn batch_from_json(value: &Json, what: &'static str) -> Result<UpdateBatch, String> {
    UpdateBatch::from_sizes(u32_list(value, what)?).map_err(|e| e.to_string())
}

fn events_from_json(doc: &Json) -> Result<Vec<KgEvent>, String> {
    doc.get("events")
        .and_then(Json::as_array)
        .ok_or("body needs an events array")?
        .iter()
        .map(|event| match event.get("op").and_then(Json::as_str) {
            Some("insert") => Ok(KgEvent::Insert(batch_from_json(
                event.get("sizes").ok_or("insert needs sizes")?,
                "sizes",
            )?)),
            Some("retract") => Ok(KgEvent::Retract(retraction_from_json(
                event.get("entries").ok_or("retract needs entries")?,
            )?)),
            Some("revise") => Ok(KgEvent::Revise(
                retraction_from_json(event.get("entries").ok_or("revise needs entries")?)?,
                batch_from_json(event.get("sizes").ok_or("revise needs sizes")?, "sizes")?,
            )),
            _ => Err("op must be insert, retract, or revise".into()),
        })
        .collect()
}

fn session_result(result: Result<EstimateReport, SessionError>) -> (u16, Json) {
    match result {
        Ok(report) => (200, estimate_json(&report)),
        Err(e) => (status_of_session_op(&e), err_json(e.to_string())),
    }
}

/// Dispatch one parsed request against the registry.
pub fn handle(registry: &SessionRegistry, req: &Request) -> (u16, Json) {
    let segments: Vec<&str> = req.segments.iter().map(String::as_str).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, Json::Obj(vec![("ok".into(), Json::Bool(true))])),
        ("GET", ["kg"]) => (
            200,
            Json::Obj(vec![(
                "sessions".into(),
                Json::Arr(
                    registry
                        .ids()
                        .into_iter()
                        .map(|id| Json::Num(id as f64))
                        .collect(),
                ),
            )]),
        ),
        ("POST", ["kg"]) => {
            let doc = match parse(&req.body) {
                Ok(doc) => doc,
                Err(e) => return (400, err_json(e.to_string())),
            };
            let outcome = if let Some(payload) = doc.get("checkpoint").and_then(Json::as_str) {
                match hex_decode(payload) {
                    Some(bytes) => registry.restore(&bytes),
                    None => return (400, err_json("checkpoint must be hex")),
                }
            } else {
                match spec_from_json(&doc) {
                    Ok(spec) => registry.register(spec),
                    Err(e) => return (400, err_json(e)),
                }
            };
            match outcome {
                Ok(id) => (200, Json::Obj(vec![("id".into(), Json::Num(id as f64))])),
                Err(e) => (status_of(&e), err_json(e.to_string())),
            }
        }
        (method, ["kg", id, rest]) => {
            let Ok(id) = id.parse::<u64>() else {
                return (400, err_json("session id must be an integer"));
            };
            match (method, *rest) {
                ("POST", "batch") => {
                    let doc = match parse(&req.body) {
                        Ok(doc) => doc,
                        Err(e) => return (400, err_json(e.to_string())),
                    };
                    let Some(list) = doc.get("batches").and_then(Json::as_array) else {
                        return (400, err_json("body needs a batches array"));
                    };
                    let batches: Result<Vec<UpdateBatch>, String> =
                        list.iter().map(|b| batch_from_json(b, "batches")).collect();
                    match batches {
                        Ok(batches) => session_result(registry.apply_batches(id, &batches)),
                        Err(e) => (400, err_json(e)),
                    }
                }
                ("POST", "events") => {
                    let doc = match parse(&req.body) {
                        Ok(doc) => doc,
                        Err(e) => return (400, err_json(e.to_string())),
                    };
                    match events_from_json(&doc) {
                        Ok(events) => session_result(registry.apply_events(id, &events)),
                        Err(e) => (400, err_json(e)),
                    }
                }
                ("GET", "estimate") => session_result(registry.estimate(id)),
                ("POST", "checkpoint") => match registry.checkpoint(id) {
                    Ok(bytes) => (
                        200,
                        Json::Obj(vec![
                            ("id".into(), Json::Num(id as f64)),
                            ("checkpoint".into(), Json::Str(hex_encode(&bytes))),
                        ]),
                    ),
                    Err(e) => (status_of_session_op(&e), err_json(e.to_string())),
                },
                ("GET", "audit") => {
                    let units = req
                        .query_value("units")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(600);
                    let seed = req
                        .query_value("seed")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0);
                    match registry.audit(id, units, seed) {
                        Ok(report) => (200, audit_json(&report)),
                        Err(e) => (status_of_session_op(&e), err_json(e.to_string())),
                    }
                }
                _ => (404, err_json("no such endpoint")),
            }
        }
        _ => (404, err_json("no such endpoint")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, body: &str) -> Request {
        let (path, query_text) = path.split_once('?').unwrap_or((path, ""));
        Request {
            method: method.to_string(),
            segments: path
                .split('/')
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect(),
            query: query_text
                .split('&')
                .filter(|s| !s.is_empty())
                .map(|p| {
                    let (k, v) = p.split_once('=').unwrap_or((p, ""));
                    (k.to_string(), v.to_string())
                })
                .collect(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn register_body() -> &'static str {
        r#"{"kind":"reservoir","capacity":40,"m":5,"seed":9,"oracle_accuracy":0.9,"oracle_seed":3,"base_sizes":[3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3,2,3,8,4,6,2,6,4,3,3,8,3,2,7,9,5,0,2,8,8,4,1,9,7]}"#
    }

    #[test]
    fn register_rejects_zero_sized_clusters_and_accepts_fixed() {
        let registry = SessionRegistry::new();
        let (status, body) = handle(&registry, &request("POST", "/kg", register_body()));
        // base_sizes contains a zero → population error.
        assert_eq!(status, 400, "{body}");
        let fixed = register_body().replace(",0,", ",1,");
        let (status, body) = handle(&registry, &request("POST", "/kg", &fixed));
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("id").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn register_rejects_seeds_a_double_cannot_carry() {
        // A u64 seed above 2^53 would silently round through the JSON
        // number path; the API must refuse it rather than register a
        // different monitor than the client asked for.
        let registry = SessionRegistry::new();
        let fixed = register_body().replace(",0,", ",1,");
        let huge = fixed.replace("\"seed\":9", "\"seed\":4354685564954406625");
        let (status, body) = handle(&registry, &request("POST", "/kg", &huge));
        assert_eq!(status, 400, "{body}");
        // 2^53 + 1 rounds to 2^53 during parsing; the collided value
        // must be refused too, not silently registered.
        let huge = fixed.replace("\"seed\":9", "\"seed\":9007199254740993");
        let (status, body) = handle(&registry, &request("POST", "/kg", &huge));
        assert_eq!(status, 400, "{body}");
        assert!(body.to_string().contains("seed"), "{body}");
        let frac = fixed.replace("\"m\":5", "\"m\":5.5");
        let (status, body) = handle(&registry, &request("POST", "/kg", &frac));
        assert_eq!(status, 400, "{body}");
    }

    #[test]
    fn full_exchange_round_trips_through_json() {
        let registry = SessionRegistry::new();
        let fixed = register_body().replace(",0,", ",1,");
        let (_, body) = handle(&registry, &request("POST", "/kg", &fixed));
        let id = body.get("id").unwrap().as_u64().unwrap();

        let (status, est) = handle(
            &registry,
            &request(
                "POST",
                &format!("/kg/{id}/batch"),
                r#"{"batches":[[3,3,3,3]]}"#,
            ),
        );
        assert_eq!(status, 200, "{est}");
        assert!(est.get("mean_bits").unwrap().as_str().unwrap().len() == 16);

        let (status, est2) = handle(
            &registry,
            &request(
                "POST",
                &format!("/kg/{id}/events"),
                r#"{"events":[{"op":"retract","entries":[{"cluster":40,"offsets":[0]}]},{"op":"insert","sizes":[2,2]}]}"#,
            ),
        );
        assert_eq!(status, 200, "{est2}");
        assert_eq!(est2.get("events_applied").unwrap().as_u64(), Some(3));

        let (status, ck) = handle(
            &registry,
            &request("POST", &format!("/kg/{id}/checkpoint"), ""),
        );
        assert_eq!(status, 200, "{ck}");
        let payload = ck.get("checkpoint").unwrap().as_str().unwrap().to_string();

        // Restore through the same endpoint family and compare bits.
        let restore_body = format!(r#"{{"checkpoint":"{payload}"}}"#);
        let (status, restored) = handle(&registry, &request("POST", "/kg", &restore_body));
        assert_eq!(status, 200, "{restored}");
        let rid = restored.get("id").unwrap().as_u64().unwrap();
        let (_, a) = handle(
            &registry,
            &request("GET", &format!("/kg/{id}/estimate"), ""),
        );
        let (_, b) = handle(
            &registry,
            &request("GET", &format!("/kg/{rid}/estimate"), ""),
        );
        assert_eq!(
            a.get("mean_bits").unwrap().as_str(),
            b.get("mean_bits").unwrap().as_str()
        );
        assert_eq!(
            a.get("var_bits").unwrap().as_str(),
            b.get("var_bits").unwrap().as_str()
        );

        let (status, audit) = handle(
            &registry,
            &request("GET", &format!("/kg/{id}/audit?units=200&seed=5"), ""),
        );
        assert_eq!(status, 200, "{audit}");
        assert_eq!(audit.get("units").unwrap().as_u64(), Some(200));
    }

    #[test]
    fn unknown_sessions_and_routes_are_distinguished() {
        let registry = SessionRegistry::new();
        let (status, _) = handle(&registry, &request("GET", "/kg/99/estimate", ""));
        assert_eq!(status, 404);
        let (status, _) = handle(&registry, &request("GET", "/nope", ""));
        assert_eq!(status, 404);
        let (status, _) = handle(&registry, &request("POST", "/kg/xyz/batch", "{}"));
        assert_eq!(status, 400);
        let (status, _) = handle(&registry, &request("POST", "/kg", "not json"));
        assert_eq!(status, 400);
        let (status, _) = handle(&registry, &request("POST", "/kg", r#"{"checkpoint":"zz"}"#));
        assert_eq!(status, 400);
        let (status, _) = handle(
            &registry,
            &request("POST", "/kg", r#"{"checkpoint":"deadbeef"}"#),
        );
        assert_eq!(status, 400, "valid hex, garbage payload → codec error");
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }
}

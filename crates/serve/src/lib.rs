//! kg-serve: a KG accuracy-monitoring service over session-scoped
//! incremental evaluators (`kg_eval::session`).
//!
//! Hand-rolled std-only HTTP/1.1 + JSON — the build environment is
//! offline, so no web framework and no serde. One exchange per
//! connection (`Connection: close`), one thread per connection, all
//! tenants multiplexed over a shared [`SessionRegistry`].
//!
//! The binary (`kg-serve`) binds a listener and prints
//! `LISTENING <addr>` on stdout so harnesses can scrape the ephemeral
//! port. The serving loop is exposed as [`serve`] so benches and tests
//! can run the exact production path in-process.

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod json;

use kg_eval::session::SessionRegistry;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

/// Handle one connection: read a single request, dispatch, respond,
/// close. Parse failures answer 400; a half-open peer is dropped
/// silently.
pub fn handle_connection(registry: &SessionRegistry, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let (status, body) = match http::read_request(&mut reader) {
        Ok(request) => api::handle(registry, &request),
        Err(http::HttpError::Closed) => return,
        Err(http::HttpError::Io(_)) => return,
        Err(http::HttpError::Bad(what)) => (
            400,
            json::Json::Obj(vec![(
                "error".to_string(),
                json::Json::Str(what.to_string()),
            )]),
        ),
    };
    let _ = http::write_response(&mut writer, status, &body.to_string());
    let _ = writer.flush();
}

/// Accept loop: one thread per connection over a shared registry. Runs
/// until the listener errors (or forever); callers wanting a bounded
/// lifetime should drop the listener from another thread or run this in
/// a dedicated thread.
pub fn serve(listener: TcpListener, registry: Arc<SessionRegistry>) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let registry = Arc::clone(&registry);
                thread::spawn(move || handle_connection(&registry, stream));
            }
            Err(_) => continue,
        }
    }
}

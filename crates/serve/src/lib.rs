//! kg-serve: a KG accuracy-monitoring service over session-scoped
//! incremental evaluators (`kg_eval::session`).
//!
//! Hand-rolled std-only HTTP/1.1 + JSON — the build environment is
//! offline, so no web framework and no serde. One exchange per
//! connection (`Connection: close`), one thread per connection, all
//! tenants multiplexed over a shared [`SessionRegistry`].
//!
//! # Fault tolerance
//!
//! The serving loop is a [`Server`] with:
//!
//! * **Read/write deadlines** on every socket — a slowloris peer
//!   dribbling bytes, or one that never reads its response, is cut off at
//!   the whole-exchange deadline ([`http::DeadlineStream`]), answered 408
//!   where a response is still possible.
//! * **Load shedding** — more than [`ServerConfig::max_in_flight`]
//!   concurrent exchanges answer `503` with `Retry-After` instead of
//!   queueing without bound.
//! * **Graceful drain** — `POST /admin/drain` (or
//!   [`DrainController::request_drain`], or stdin EOF in the binary)
//!   stops the accept loop, waits out in-flight requests under
//!   [`ServerConfig::drain_deadline`], checkpoints every live session to
//!   the registry's spill store, and returns. A restarted process
//!   recovers the full tenant set via
//!   [`SessionRegistry::recover_from_store`].
//! * **Fault injection** — a [`FaultHook`] scripted per accepted
//!   connection lets the chaos harness (`kg_bench::chaos`) drop, stall,
//!   or half-serve exchanges deterministically on the production path.
//!
//! The binary (`kg-serve`) binds a listener and prints
//! `LISTENING <addr>` on stdout so harnesses can scrape the ephemeral
//! port. [`serve`] remains as the block-forever convenience wrapper so
//! benches and tests can run the exact production path in-process.

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod json;

use kg_eval::session::SessionRegistry;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Connection-hardening knobs of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Whole-exchange deadline for reading one request. A peer that has
    /// not delivered a complete request by then is answered 408.
    pub read_timeout: Duration,
    /// Socket write timeout for the response. A peer that never reads
    /// cannot wedge the worker past this.
    pub write_timeout: Duration,
    /// Maximum concurrent exchanges; beyond it new connections are shed
    /// with `503` + `Retry-After`.
    pub max_in_flight: usize,
    /// How long a drain waits for in-flight exchanges before
    /// checkpointing and returning anyway.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_in_flight: 256,
            drain_deadline: Duration::from_secs(10),
        }
    }
}

/// What a [`FaultHook`] makes of one accepted connection. Every action is
/// decided **before** the request is dispatched to the registry, so an
/// injected fault never half-applies a mutation — the client retries
/// against unchanged state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Serve normally.
    None,
    /// Drop the connection without reading the request.
    AbortBeforeRead,
    /// Read the full request, then drop without responding (the client
    /// cannot tell how far the server got).
    AbortAfterRead,
    /// Hold the connection open for the given delay, then drop it
    /// without reading (a stalled server from the client's view).
    StallThenAbort(Duration),
}

/// Deterministic per-connection fault plan, consulted with the accept
/// sequence number of each connection.
pub trait FaultHook: Send + Sync {
    /// The action for connection number `conn_seq` (0-based, in accept
    /// order).
    fn plan(&self, conn_seq: u64) -> FaultAction;
}

/// Point-in-time serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections shed with 503 (over `max_in_flight`).
    pub shed: u64,
    /// Exchanges cut off by the read deadline (answered 408).
    pub timeouts: u64,
    /// Connections sacrificed to the fault hook.
    pub faults_injected: u64,
}

/// What a graceful drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Sessions checkpointed to the spill store (0 when the registry has
    /// no store attached).
    pub persisted: usize,
    /// In-flight exchanges still running when the drain deadline expired
    /// (0 on a clean drain).
    pub stragglers: usize,
}

struct Shared {
    registry: Arc<SessionRegistry>,
    config: ServerConfig,
    fault: Option<Arc<dyn FaultHook>>,
    addr: SocketAddr,
    draining: AtomicBool,
    killed: AtomicBool,
    in_flight: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    faults_injected: AtomicU64,
    outcome: Mutex<Option<DrainOutcome>>,
}

impl Shared {
    /// Ask the accept loop to stop, waking it with a loopback connection
    /// if it is parked in `accept()`.
    fn request_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
        }
    }
}

/// A remote control for requesting a graceful drain (e.g. from a signal
/// watcher thread) without owning the [`ServerHandle`].
#[derive(Clone)]
pub struct DrainController(Arc<Shared>);

impl DrainController {
    /// Ask the server to drain; returns immediately. Join the
    /// [`ServerHandle`] to observe completion.
    pub fn request_drain(&self) {
        self.0.request_drain();
    }
}

/// A running accept loop. Dropping the handle does **not** stop the
/// server; call [`ServerHandle::drain`] or [`ServerHandle::kill`].
pub struct Server {
    shared: Arc<Shared>,
    accept: thread::JoinHandle<()>,
}

/// Alias kept descriptive at call sites.
pub type ServerHandle = Server;

impl Server {
    /// Start serving `listener` on a background accept thread.
    pub fn start(
        listener: TcpListener,
        registry: Arc<SessionRegistry>,
        config: ServerConfig,
        fault: Option<Arc<dyn FaultHook>>,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry,
            config,
            fault,
            addr,
            draining: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            outcome: Mutex::new(None),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(Server { shared, accept })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A cloneable drain trigger.
    pub fn controller(&self) -> DrainController {
        DrainController(Arc::clone(&self.shared))
    }

    /// Serving counters so far.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Gracefully drain: stop accepting, wait out in-flight exchanges
    /// under the drain deadline, checkpoint every live session to the
    /// spill store, and return what happened.
    pub fn drain(self) -> DrainOutcome {
        self.shared.request_drain();
        let shared = Arc::clone(&self.shared);
        let _ = self.accept.join();
        let outcome = shared.outcome.lock().unwrap().take();
        outcome.unwrap_or(DrainOutcome {
            persisted: 0,
            stragglers: 0,
        })
    }

    /// Abrupt shutdown: stop accepting and return without waiting for
    /// in-flight exchanges and without checkpointing anything — the
    /// crash-simulation path of the chaos harness. Whatever the spill
    /// store holds (write-through, earlier evictions) is all a restart
    /// gets.
    pub fn kill(self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        self.shared.request_drain();
        let _ = self.accept.join();
    }

    /// Block until the server drains (via `POST /admin/drain` or a
    /// [`DrainController`]) and return the outcome.
    pub fn join(self) -> DrainOutcome {
        let shared = Arc::clone(&self.shared);
        let _ = self.accept.join();
        let outcome = shared.outcome.lock().unwrap().take();
        outcome.unwrap_or(DrainOutcome {
            persisted: 0,
            stragglers: 0,
        })
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up (or a straggler racing it): refuse politely.
            let _ = shed_response(stream, &shared.config, "draining");
            break;
        }
        let seq = shared.accepted.fetch_add(1, Ordering::Relaxed);
        let in_flight = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let conn_shared = Arc::clone(&shared);
        thread::spawn(move || {
            handle_exchange(&conn_shared, stream, seq, in_flight);
            conn_shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        });
    }
    drop(listener);
    if shared.killed.load(Ordering::SeqCst) {
        return;
    }
    // Graceful path: wait out in-flight exchanges, then checkpoint.
    let deadline = Instant::now() + shared.config.drain_deadline;
    while shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(2));
    }
    let stragglers = shared.in_flight.load(Ordering::SeqCst);
    let persisted = shared.registry.drain_to_store().unwrap_or(0);
    *shared.outcome.lock().unwrap() = Some(DrainOutcome {
        persisted,
        stragglers,
    });
}

fn shed_response(mut stream: TcpStream, config: &ServerConfig, why: &str) -> std::io::Result<()> {
    stream.set_write_timeout(Some(config.write_timeout))?;
    let body = json::Json::Obj(vec![(
        "error".to_string(),
        json::Json::Str(why.to_string()),
    )]);
    http::write_response_with(&mut stream, 503, &[("retry-after", "1")], &body.to_string())?;
    finish_exchange(stream);
    Ok(())
}

/// Close an exchange without risking a TCP reset racing the response: a
/// status written while request bytes sit unread (shedding, 408, 413)
/// would be discarded by the peer's kernel if we closed outright. Send
/// FIN, then drain whatever the peer still sends, under a hard bound.
fn finish_exchange(mut stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

/// Serve one connection end to end: fault hook, shedding, deadlines,
/// admin routes, API dispatch.
fn handle_exchange(shared: &Shared, stream: TcpStream, seq: u64, in_flight: usize) {
    let action = match &shared.fault {
        Some(hook) => hook.plan(seq),
        None => FaultAction::None,
    };
    match action {
        FaultAction::AbortBeforeRead => {
            shared.faults_injected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        FaultAction::StallThenAbort(delay) => {
            shared.faults_injected.fetch_add(1, Ordering::Relaxed);
            thread::sleep(delay);
            return;
        }
        FaultAction::AbortAfterRead | FaultAction::None => {}
    }
    if in_flight > shared.config.max_in_flight {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        let _ = shed_response(stream, &shared.config, "overloaded");
        return;
    }
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(http::DeadlineStream::new(
        reader,
        shared.config.read_timeout,
    ));
    let mut writer = stream;
    let parsed = http::read_request(&mut reader);
    if action == FaultAction::AbortAfterRead {
        shared.faults_injected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let (status, body) = match parsed {
        Ok(request) => dispatch(shared, &request),
        Err(http::HttpError::Closed) => return,
        Err(e) if e.is_timeout() => {
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
            (408, err_body("request read deadline exceeded"))
        }
        Err(http::HttpError::Io(_)) => return,
        Err(http::HttpError::Bad(what)) => (400, err_body(what)),
        Err(http::HttpError::TooLarge(what)) => (413, err_body(what)),
    };
    if writer
        .set_write_timeout(Some(shared.config.write_timeout))
        .is_err()
    {
        return;
    }
    if http::write_response(&mut writer, status, &body.to_string()).is_ok() {
        finish_exchange(writer);
    }
}

fn err_body(what: &str) -> json::Json {
    json::Json::Obj(vec![(
        "error".to_string(),
        json::Json::Str(what.to_string()),
    )])
}

/// Admin routes (they need server state), then the session API.
fn dispatch(shared: &Shared, request: &http::Request) -> (u16, json::Json) {
    let segments: Vec<&str> = request.segments.iter().map(String::as_str).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["admin", "drain"]) => {
            // Flag now, wake the accept loop from a detached thread so
            // this exchange still gets its 200 out.
            shared.draining.store(true, Ordering::SeqCst);
            let addr = shared.addr;
            thread::spawn(move || {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
            });
            (
                200,
                json::Json::Obj(vec![("draining".to_string(), json::Json::Bool(true))]),
            )
        }
        ("GET", ["admin", "stats"]) => {
            let serve = shared.stats();
            let registry = shared.registry.stats();
            let num = |n: u64| json::Json::Num(n as f64);
            (
                200,
                json::Json::Obj(vec![
                    ("accepted".to_string(), num(serve.accepted)),
                    ("shed".to_string(), num(serve.shed)),
                    ("timeouts".to_string(), num(serve.timeouts)),
                    ("faults_injected".to_string(), num(serve.faults_injected)),
                    ("live".to_string(), num(registry.live as u64)),
                    ("spilled".to_string(), num(registry.spilled as u64)),
                    ("evictions".to_string(), num(registry.evictions)),
                    ("revivals".to_string(), num(registry.revivals)),
                    ("corrupt_dropped".to_string(), num(registry.corrupt_dropped)),
                    (
                        "persist_failures".to_string(),
                        num(registry.persist_failures),
                    ),
                ]),
            )
        }
        _ => api::handle(&shared.registry, request),
    }
}

/// Handle one connection without hardening: read a single request,
/// dispatch, respond, close. Parse failures answer 400; a half-open peer
/// is dropped silently. Kept for in-process callers that bring their own
/// transport guarantees; the [`Server`] path adds deadlines, shedding,
/// and fault injection.
pub fn handle_connection(registry: &SessionRegistry, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let (status, body) = match http::read_request(&mut reader) {
        Ok(request) => api::handle(registry, &request),
        Err(http::HttpError::Closed) => return,
        Err(http::HttpError::Io(_)) => return,
        Err(http::HttpError::Bad(what)) => (400, err_body(what)),
        Err(http::HttpError::TooLarge(what)) => (413, err_body(what)),
    };
    let _ = http::write_response(&mut writer, status, &body.to_string());
    let _ = writer.flush();
}

/// Accept loop with default hardening: serve until drained (via
/// `POST /admin/drain`), then return. The historical entry point for
/// benches and tests that want the production path in-process on the
/// current thread.
pub fn serve(listener: TcpListener, registry: Arc<SessionRegistry>) {
    if let Ok(server) = Server::start(listener, registry, ServerConfig::default(), None) {
        server.join();
    }
}

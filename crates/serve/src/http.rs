//! Hand-rolled HTTP/1.1 subset over std TCP: request parsing with strict
//! limits, and `Connection: close` responses. Enough for the kg-serve
//! API; deliberately nothing more (no keep-alive, no chunked encoding,
//! no TLS).
//!
//! Hostile-client hardening lives here too: [`DeadlineStream`] enforces a
//! *whole-request* read deadline (a slowloris dribbling one byte per
//! second trips it just as surely as a silent peer), and the size caps
//! surface as [`HttpError::TooLarge`] so the server can answer 413.

use std::io::{self, BufRead, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum bytes of request line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body (a restore payload for a large session).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Decoded path segments (`/kg/7/estimate` → `["kg", "7", "estimate"]`).
    pub segments: Vec<String>,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First query value under `key`.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before sending a complete request line.
    Closed,
    /// Transport failure.
    Io(io::Error),
    /// The request violated the supported subset; respond 400 with this
    /// message.
    Bad(&'static str),
    /// The request exceeded a size cap; respond 413 with this message.
    TooLarge(&'static str),
}

impl HttpError {
    /// Whether the failure was a read-deadline expiry (respond 408).
    pub fn is_timeout(&self) -> bool {
        matches!(self, HttpError::Io(e) if e.kind() == io::ErrorKind::TimedOut)
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one request. The connection serves exactly one exchange
/// (`Connection: close`), so nothing after the body is consumed.
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut head = 0usize;
    let mut line = String::new();
    if stream.read_line(&mut line)? == 0 {
        return Err(HttpError::Closed);
    }
    head += line.len();
    if head > MAX_HEAD {
        return Err(HttpError::TooLarge("request line too long"));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Bad("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Bad("missing target"))?
        .to_string();
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => return Err(HttpError::Bad("unsupported HTTP version")),
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if stream.read_line(&mut header)? == 0 {
            return Err(HttpError::Bad("connection closed mid-headers"));
        }
        head += header.len();
        if head > MAX_HEAD {
            return Err(HttpError::TooLarge("headers too long"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Bad("bad content-length"))?;
                if content_length > MAX_BODY {
                    return Err(HttpError::TooLarge("body too large"));
                }
            }
            if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError::Bad("chunked bodies unsupported"));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;

    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let segments = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let query = query_text
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        segments,
        query,
        body,
    })
}

/// Standard reason phrase for the statuses the API uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write one JSON response and close the exchange.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_response_with(stream, status, &[], body)
}

/// Write one JSON response with extra headers (e.g. `Retry-After` on a
/// load-shed 503) and close the exchange.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        status,
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    write!(stream, "{head}\r\n{body}")?;
    stream.flush()
}

/// A [`TcpStream`] reader with a **whole-exchange** deadline: every read
/// re-arms the socket timeout to the time remaining, so a slowloris peer
/// dribbling one byte per timeout window still hits the wall at the
/// deadline (a fixed per-read timeout never would). Expiry surfaces as
/// [`io::ErrorKind::TimedOut`].
pub struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
}

impl DeadlineStream {
    /// Wrap `stream`, allowing `budget` from now for the whole exchange.
    pub fn new(stream: TcpStream, budget: Duration) -> Self {
        DeadlineStream {
            stream,
            deadline: Instant::now() + budget,
        }
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let now = Instant::now();
        let Some(remaining) = self
            .deadline
            .checked_duration_since(now)
            .filter(|d| !d.is_zero())
        else {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "read deadline exceeded",
            ));
        };
        self.stream.set_read_timeout(Some(remaining))?;
        match self.stream.read(buf) {
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "read deadline exceeded",
                ))
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_target_query_and_body() {
        let req =
            parse("POST /kg/7/batch?units=300&seed=9 HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.segments, vec!["kg", "7", "batch"]);
        assert_eq!(req.query_value("units"), Some("300"));
        assert_eq!(req.query_value("seed"), Some("9"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_the_unsupported_subset() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(parse("GET /\r\n\r\n"), Err(HttpError::Bad(_))));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
        let dribble = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(20 * 1024));
        assert!(matches!(parse(&dribble), Err(HttpError::TooLarge(_))));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
    }

    #[test]
    fn deadline_stream_bounds_a_slowloris_dribble() {
        use std::io::BufReader;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut peer = TcpStream::connect(addr).unwrap();
            // One byte every 25ms beats any 100ms *per-read* timeout
            // forever; the whole-exchange deadline must still fire.
            for chunk in ["G", "E", "T", " ", "/", " ", "H", "T", "T", "P"] {
                if peer.write_all(chunk.as_bytes()).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            // Never finish the request line; hold the socket open.
            std::thread::sleep(Duration::from_millis(500));
        });
        let (stream, _) = listener.accept().unwrap();
        let start = Instant::now();
        let mut reader = BufReader::new(DeadlineStream::new(stream, Duration::from_millis(100)));
        let result = read_request(&mut reader);
        let elapsed = start.elapsed();
        assert!(
            matches!(&result, Err(e) if e.is_timeout()),
            "wanted timeout, got {result:?}"
        );
        assert!(
            elapsed < Duration::from_millis(450),
            "deadline did not bound the dribble: {elapsed:?}"
        );
        writer.join().unwrap();
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "{\"error\":\"x\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("content-length: 13\r\n"));
        assert!(text.contains("connection: close"));
        assert!(text.ends_with("{\"error\":\"x\"}"));

        let mut out = Vec::new();
        write_response_with(&mut out, 503, &[("retry-after", "1")], "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}

//! Hand-rolled HTTP/1.1 subset over std TCP: request parsing with strict
//! limits, and `Connection: close` responses. Enough for the kg-serve
//! API; deliberately nothing more (no keep-alive, no chunked encoding,
//! no TLS).

use std::io::{self, BufRead, Write};

/// Maximum bytes of request line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body (a restore payload for a large session).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Decoded path segments (`/kg/7/estimate` → `["kg", "7", "estimate"]`).
    pub segments: Vec<String>,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First query value under `key`.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before sending a complete request line.
    Closed,
    /// Transport failure.
    Io(io::Error),
    /// The request violated the supported subset; respond 400 with this
    /// message.
    Bad(&'static str),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one request. The connection serves exactly one exchange
/// (`Connection: close`), so nothing after the body is consumed.
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut head = 0usize;
    let mut line = String::new();
    if stream.read_line(&mut line)? == 0 {
        return Err(HttpError::Closed);
    }
    head += line.len();
    if head > MAX_HEAD {
        return Err(HttpError::Bad("request line too long"));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Bad("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Bad("missing target"))?
        .to_string();
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => return Err(HttpError::Bad("unsupported HTTP version")),
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if stream.read_line(&mut header)? == 0 {
            return Err(HttpError::Bad("connection closed mid-headers"));
        }
        head += header.len();
        if head > MAX_HEAD {
            return Err(HttpError::Bad("headers too long"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Bad("bad content-length"))?;
                if content_length > MAX_BODY {
                    return Err(HttpError::Bad("body too large"));
                }
            }
            if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError::Bad("chunked bodies unsupported"));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;

    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let segments = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let query = query_text
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        segments,
        query,
        body,
    })
}

/// Standard reason phrase for the statuses the API uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Write one JSON response and close the exchange.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        status,
        reason(status),
        body.len(),
        body
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_target_query_and_body() {
        let req =
            parse("POST /kg/7/batch?units=300&seed=9 HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.segments, vec!["kg", "7", "batch"]);
        assert_eq!(req.query_value("units"), Some("300"));
        assert_eq!(req.query_value("seed"), Some("9"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_the_unsupported_subset() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(parse("GET /\r\n\r\n"), Err(HttpError::Bad(_))));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "{\"error\":\"x\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("content-length: 13\r\n"));
        assert!(text.contains("connection: close"));
        assert!(text.ends_with("{\"error\":\"x\"}"));
    }
}

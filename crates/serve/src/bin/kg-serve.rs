//! kg-serve binary: bind, announce, serve, drain.
//!
//! ```text
//! kg-serve [--addr 127.0.0.1:0] [--workers N]
//!          [--state-dir DIR] [--max-live N] [--idle-ttl TICKS]
//!          [--write-through]
//!          [--read-timeout-ms MS] [--write-timeout-ms MS]
//!          [--max-in-flight N] [--drain-deadline-ms MS]
//!          [--drain-on-stdin-eof]
//! ```
//!
//! Prints `LISTENING <addr>` to stdout once bound (harnesses scrape the
//! ephemeral port from it). With `--state-dir`, sessions spill to disk
//! under the TTL/LRU policy, every session found there at startup is
//! recovered, and a graceful drain (`POST /admin/drain`, or stdin EOF
//! with `--drain-on-stdin-eof`) checkpoints the full tenant set before
//! exit, announced as `DRAINED <n>`.

use kg_eval::session::{LifecyclePolicy, SessionRegistry};
use kg_eval::{CheckpointStore, TrialExecutor};
use kg_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers: Option<usize> = None;
    let mut state_dir: Option<String> = None;
    let mut policy = LifecyclePolicy::default();
    let mut config = ServerConfig::default();
    let mut drain_on_stdin_eof = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => usage("--addr needs a value"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = Some(v),
                None => usage("--workers needs an integer"),
            },
            "--state-dir" => match args.next() {
                Some(v) => state_dir = Some(v),
                None => usage("--state-dir needs a path"),
            },
            "--max-live" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => policy.max_live = Some(v),
                None => usage("--max-live needs an integer"),
            },
            "--idle-ttl" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => policy.idle_ttl = Some(v),
                None => usage("--idle-ttl needs an integer (logical ticks)"),
            },
            "--write-through" => policy.write_through = true,
            "--read-timeout-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.read_timeout = Duration::from_millis(v),
                None => usage("--read-timeout-ms needs an integer"),
            },
            "--write-timeout-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.write_timeout = Duration::from_millis(v),
                None => usage("--write-timeout-ms needs an integer"),
            },
            "--max-in-flight" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.max_in_flight = v,
                None => usage("--max-in-flight needs an integer"),
            },
            "--drain-deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.drain_deadline = Duration::from_millis(v),
                None => usage("--drain-deadline-ms needs an integer"),
            },
            "--drain-on-stdin-eof" => drain_on_stdin_eof = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let executor = match workers {
        Some(n) => TrialExecutor::new().with_workers(n),
        None => TrialExecutor::new(),
    };
    let registry = match &state_dir {
        Some(dir) => {
            let store = match CheckpointStore::open(dir) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("kg-serve: cannot open --state-dir {dir}: {e}");
                    exit(1);
                }
            };
            let registry = SessionRegistry::with_lifecycle(executor, policy, store);
            match registry.recover_from_store() {
                Ok(recovered) if recovered > 0 => eprintln!("recovered {recovered} sessions"),
                Ok(_) => {}
                Err(e) => {
                    eprintln!("kg-serve: recovery scan failed: {e}");
                    exit(1);
                }
            }
            registry
        }
        None => {
            if policy.max_live.is_some() || policy.idle_ttl.is_some() || policy.write_through {
                usage("--max-live/--idle-ttl/--write-through need --state-dir");
            }
            SessionRegistry::with_executor(executor)
        }
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("kg-serve: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("LISTENING {local}");
    std::io::stdout().flush().expect("stdout");
    let server = match Server::start(listener, Arc::new(registry), config, None) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("kg-serve: cannot start accept loop: {e}");
            exit(1);
        }
    };
    if drain_on_stdin_eof {
        // Opt-in process drain signal without OS signal handlers (the
        // workspace forbids unsafe code): the supervisor holds our stdin
        // pipe and closes it to request shutdown.
        let controller = server.controller();
        std::thread::spawn(move || {
            let mut sink = [0u8; 1024];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            controller.request_drain();
        });
    }
    let outcome = server.join();
    println!("DRAINED {}", outcome.persisted);
    if outcome.stragglers > 0 {
        eprintln!(
            "kg-serve: {} in-flight requests outlived the drain deadline",
            outcome.stragglers
        );
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("kg-serve: {problem}");
    }
    eprintln!(
        "usage: kg-serve [--addr HOST:PORT] [--workers N] [--state-dir DIR] \
         [--max-live N] [--idle-ttl TICKS] [--write-through] \
         [--read-timeout-ms MS] [--write-timeout-ms MS] [--max-in-flight N] \
         [--drain-deadline-ms MS] [--drain-on-stdin-eof]"
    );
    exit(if problem.is_empty() { 0 } else { 2 });
}

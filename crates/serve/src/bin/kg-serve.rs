//! kg-serve binary: bind, announce, serve.
//!
//! ```text
//! kg-serve [--addr 127.0.0.1:0] [--workers N]
//! ```
//!
//! Prints `LISTENING <addr>` to stdout once bound (harnesses scrape the
//! ephemeral port from it), then serves until killed.

use kg_eval::session::SessionRegistry;
use kg_eval::TrialExecutor;
use std::io::Write;
use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => usage("--addr needs a value"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = Some(v),
                None => usage("--workers needs an integer"),
            },
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let executor = match workers {
        Some(n) => TrialExecutor::new().with_workers(n),
        None => TrialExecutor::new(),
    };
    let registry = Arc::new(SessionRegistry::with_executor(executor));
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("kg-serve: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("LISTENING {local}");
    std::io::stdout().flush().expect("stdout");
    kg_serve::serve(listener, registry);
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("kg-serve: {problem}");
    }
    eprintln!("usage: kg-serve [--addr HOST:PORT] [--workers N]");
    exit(if problem.is_empty() { 0 } else { 2 });
}

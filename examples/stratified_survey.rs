//! Stratified evaluation (§5.3): when a signal predicts cluster accuracy,
//! stratify on it and cut the annotation bill further.
//!
//! This example builds a KG whose label distribution follows the Binomial
//! Mixture Model (larger clusters more accurate, Fig. 3), then compares
//! plain TWCS against size-stratified (cumulative-√F) and oracle-stratified
//! TWCS, printing the strata the cum-√F rule chose.
//!
//! Run with: `cargo run --release --example stratified_survey`

use kg_accuracy_eval::prelude::*;
use kg_accuracy_eval::stats::stratify::cum_sqrt_f_boundaries;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // BMM labels with a strong size-accuracy link (c = 0.05).
    let dataset = DatasetProfile::movie_syn(0.05, 0.1)
        .scaled(0.2)
        .generate(21);
    let pop = &dataset.population;
    println!(
        "KG: {} — {} entities, {} triples, expected accuracy {:.1}%\n",
        dataset.name,
        pop.num_clusters(),
        pop.total_triples(),
        dataset.gold_accuracy * 100.0
    );

    // Show the strata the cumulative-√F rule builds from cluster sizes.
    let sizes: Vec<u64> = pop.sizes().iter().map(|&s| s as u64).collect();
    let bounds = cum_sqrt_f_boundaries(&sizes, 4).expect("non-empty population");
    println!("cum-√F size strata:");
    for (h, b) in bounds.iter().enumerate() {
        let members = sizes.iter().filter(|&&s| b.contains(s)).count();
        let hi = if b.hi == u64::MAX {
            "∞".into()
        } else {
            format!("{}", b.hi)
        };
        println!(
            "  stratum {h}: sizes [{}, {}) — {members} clusters",
            b.lo, hi
        );
    }
    println!();

    let config = EvalConfig::default();
    for (name, evaluator) in [
        ("TWCS               ", Evaluator::twcs(5)),
        ("TWCS + size strata ", Evaluator::twcs_size_stratified(5, 4)),
        (
            "TWCS + oracle strata",
            Evaluator::twcs_oracle_stratified(5, 4),
        ),
    ] {
        let mut rng = StdRng::seed_from_u64(4);
        let report = evaluator
            .run(pop, dataset.oracle.as_ref(), &config, &mut rng)
            .expect("non-empty population");
        println!("{name}: {}", report.summary());
    }
    println!("\n(oracle strata are the unattainable lower bound — they need the true");
    println!(" accuracies; size strata are the practical approximation, Table 7.)");
}

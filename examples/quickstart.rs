//! Quickstart: evaluate the accuracy of a small knowledge graph with the
//! paper's headline design (two-stage weighted cluster sampling) and
//! compare against simple random sampling.
//!
//! Run with: `cargo run --release --example quickstart`

use kg_accuracy_eval::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build a knowledge graph. Here: a synthetic NELL-like KG whose
    //    ground-truth accuracy is 91%. For your own KG, implement
    //    `ClusterPopulation` (cluster sizes) and `LabelOracle` (your human
    //    annotation workflow) — see `examples/movie_audit.rs`.
    let dataset = DatasetProfile::nell().generate(7);
    println!(
        "KG: {} — {} entities, {} triples, true accuracy {:.1}%",
        dataset.name,
        dataset.population.num_clusters(),
        dataset.population.total_triples(),
        dataset.gold_accuracy * 100.0
    );

    // 2. Configure the statistical contract: margin of error ≤ 5% at 95%
    //    confidence (the paper's default).
    let config = EvalConfig::default();

    // 3. Run the iterative evaluation loop with TWCS (m = 5; the paper
    //    finds m in 3–5 near-optimal across all KGs it studied).
    let mut rng = StdRng::seed_from_u64(42);
    let report = Evaluator::twcs(5)
        .run(
            &dataset.population,
            dataset.oracle.as_ref(),
            &config,
            &mut rng,
        )
        .expect("non-empty population");
    println!("\nTWCS: {}", report.summary());
    println!(
        "  95% CI: [{:.1}%, {:.1}%]",
        report.ci.lo * 100.0,
        report.ci.hi * 100.0
    );

    // 4. Same contract with SRS for comparison: same guarantee, higher
    //    human cost (every sampled triple is a fresh entity to identify).
    let mut rng = StdRng::seed_from_u64(42);
    let srs = Evaluator::srs()
        .run(
            &dataset.population,
            dataset.oracle.as_ref(),
            &config,
            &mut rng,
        )
        .expect("non-empty population");
    println!("\nSRS:  {}", srs.summary());

    let saving = 1.0 - report.cost_seconds / srs.cost_seconds;
    println!(
        "\nTWCS saved {:.0}% of the annotation time.",
        saving * 100.0
    );
}

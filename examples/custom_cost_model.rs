//! Fitting your own annotation cost model (§3, §7.1.3) and watching the
//! optimal sampling design respond.
//!
//! Different annotation teams have different cost structures: if your
//! entity-identification step is cheap (good tooling, disambiguated ids),
//! cluster sampling buys less; if verification is cheap but identification
//! is slow, deep second stages pay off. This example fits `(c1, c2)` from
//! timed tasks and re-solves Eq. 12 for the optimal second-stage size.
//!
//! Run with: `cargo run --release --example custom_cost_model`

use kg_accuracy_eval::annotate::cost::{CostModel, CostObservation};
use kg_accuracy_eval::annotate::oracle::cluster_accuracies;
use kg_accuracy_eval::prelude::*;
use kg_accuracy_eval::sampling::optimal_m::optimal_m_exact;
use kg_accuracy_eval::sampling::variance::PopulationTruth;

fn main() {
    // --- Fit a cost model from your timed annotation tasks ---------------
    // (entities identified, triples validated, measured seconds)
    let timings = [
        (50u64, 50u64, 3498.0), // triple-level task
        (11, 50, 1745.0),       // entity-level task
        (174, 174, 12700.0),    // a long SRS audit
        (24, 178, 5560.0),      // a TWCS audit
    ];
    let observations: Vec<CostObservation> = timings
        .iter()
        .map(|&(entities, triples, seconds)| CostObservation {
            entities,
            triples,
            seconds,
        })
        .collect();
    let fitted = CostModel::fit(&observations).expect("non-degenerate timings");
    println!(
        "fitted cost model: c1 = {:.1} s/entity, c2 = {:.1} s/triple (RMSE {:.0} s)",
        fitted.c1,
        fitted.c2,
        fitted.rmse(&observations)
    );

    // --- Solve for the optimal second-stage size under three regimes ----
    let dataset = DatasetProfile::nell().generate(13);
    let accuracies = cluster_accuracies(&dataset.population, dataset.oracle.as_ref());
    let truth = PopulationTruth::new(dataset.population.sizes().to_vec(), accuracies)
        .expect("non-empty population");

    println!(
        "\noptimal m on {} under different cost regimes (5% MoE @95%):",
        dataset.name
    );
    for (label, cost) in [
        ("your fitted model        ", fitted),
        ("cheap identification     ", CostModel::new(5.0, 25.0)),
        ("expensive identification ", CostModel::new(180.0, 10.0)),
    ] {
        let best = optimal_m_exact(&truth, cost, 0.05, 0.05, 30).expect("valid search");
        println!(
            "  {label}: m* = {:>2}, predicted cost {:>5.2} h with n ≈ {:.0} clusters",
            best.m,
            best.cost_seconds / 3600.0,
            best.n
        );
    }
    println!("\n(cheap identification pushes m* toward 1 — cluster grouping stops paying;");
    println!(" expensive identification pushes m* up — amortize each identified entity.)");
}

//! Continuous accuracy monitoring of an evolving KG (§6): absorb a stream
//! of update batches with both incremental evaluators and compare their
//! running estimates and incremental annotation costs against re-running
//! static evaluation from scratch.
//!
//! Run with: `cargo run --release --example evolving_monitor`

use kg_accuracy_eval::annotate::cost::CostModel;
use kg_accuracy_eval::datagen::evolve::UpdateGenerator;
use kg_accuracy_eval::eval::dynamic::monitor::run_sequence;
use kg_accuracy_eval::eval::dynamic::IncrementalEvaluator;
use kg_accuracy_eval::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Base KG: a 10%-scale MOVIE at 90% accuracy.
    let base = DatasetProfile::movie().scaled(0.1).generate(3);
    let pop = &base.population;
    let oracle = base.oracle.as_ref();
    println!(
        "base KG: {} triples @ ~90% accurate; streaming 10 update batches (~10% each)\n",
        pop.total_triples()
    );
    let config = EvalConfig::default();
    let batches = UpdateGenerator::movie_like().sequence(10, pop.total_triples() / 10, 77);

    // --- RS: reservoir incremental evaluation (Algorithm 1) -------------
    // Driven by the *dense* engine: the arena is growable, so each update
    // batch extends its label store in lock-step with the evolving id
    // space (the hash engine below is interchangeable — estimates and
    // costs are byte-identical).
    use kg_accuracy_eval::annotate::dense::DenseAnnotator;
    use kg_accuracy_eval::annotate::label_store::LabelStore;
    use std::sync::Arc;
    let store = Arc::new(LabelStore::materialize(pop, oracle));
    let mut rng = StdRng::seed_from_u64(1);
    let mut annotator = DenseAnnotator::growable(store, CostModel::default(), base.oracle.clone());
    let mut rs = ReservoirEvaluator::evaluate_base(pop, 60, 5, config, &mut annotator, &mut rng);
    let base_cost = annotator.hours();
    println!(
        "RS base evaluation: {:.2}% (|R| = {}, {:.2} h)",
        rs.estimate().mean * 100.0,
        rs.capacity(),
        base_cost
    );
    let rs_outcomes = run_sequence(&mut rs, &batches, config.alpha, &mut annotator, &mut rng);

    // --- SS: stratified incremental evaluation (Algorithm 2) ------------
    let mut rng = StdRng::seed_from_u64(2);
    let base_report = Evaluator::twcs(5)
        .run(pop, oracle, &config, &mut rng)
        .expect("non-empty population");
    let mut annotator = SimulatedAnnotator::new(oracle, CostModel::default());
    let mut ss = StratifiedIncremental::from_base(pop, base_report.estimate, 5, config);
    println!(
        "SS base evaluation: {:.2}% ({:.2} h)\n",
        base_report.estimate.mean * 100.0,
        base_report.cost_hours()
    );
    let ss_outcomes = run_sequence(&mut ss, &batches, config.alpha, &mut annotator, &mut rng);

    println!("batch  RS est   RS cost(h)  SS est   SS cost(h)   [per-batch incremental cost]");
    for (r, s) in rs_outcomes.iter().zip(&ss_outcomes) {
        println!(
            "{:>5}  {:>6.2}%  {:>9.3}  {:>6.2}%  {:>9.3}",
            r.batch,
            r.estimate.mean * 100.0,
            r.batch_cost_seconds / 3600.0,
            s.estimate.mean * 100.0,
            s.batch_cost_seconds / 3600.0,
        );
    }
    let rs_total = rs_outcomes
        .last()
        .map_or(0.0, |o| o.cumulative_cost_seconds)
        / 3600.0;
    let ss_total = ss_outcomes
        .last()
        .map_or(0.0, |o| o.cumulative_cost_seconds)
        / 3600.0;
    println!(
        "\ntotals: RS {rs_total:.2} h, SS {ss_total:.2} h over 10 updates \
         (a static re-evaluation costs ~{:.2} h per update)",
        base_report.cost_hours()
    );
    println!(
        "reservoir replacements across the stream: {}",
        rs.replacements()
    );
}

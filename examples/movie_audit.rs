//! Auditing a production-scale KG: compare all sampling designs on a
//! MOVIE-scale graph (≈2.65M triples, ≈289k entities) and pick the
//! second-stage size `m` from a pilot sample — the full §5 workflow.
//!
//! Run with: `cargo run --release --example movie_audit`

use kg_accuracy_eval::annotate::cost::CostModel;
use kg_accuracy_eval::prelude::*;
use kg_accuracy_eval::sampling::optimal_m::{optimal_m_from_pilot, PilotVariance};
use kg_accuracy_eval::sampling::twcs::annotate_cluster_sized;
use kg_accuracy_eval::sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let dataset = DatasetProfile::movie().generate(11);
    let pop = &dataset.population;
    let oracle = dataset.oracle.as_ref();
    println!(
        "KG: {} — {} entities, {} triples (true accuracy ~{:.0}%)\n",
        dataset.name,
        pop.num_clusters(),
        pop.total_triples(),
        dataset.gold_accuracy * 100.0
    );

    // --- Step 1: pilot sample to estimate variance components -----------
    // Annotate ~25 PPS-drawn clusters deeply (m = 10) to estimate the
    // between/within cluster variance, then solve Eq. 12 for optimal m.
    let index = Arc::new(PopulationIndex::from_population(pop).expect("non-empty"));
    let mut rng = StdRng::seed_from_u64(5);
    let mut pilot_annotator = SimulatedAnnotator::new(oracle, CostModel::default());
    let mut observations = Vec::new();
    for _ in 0..25 {
        let c = index.sample_cluster_pps(&mut rng);
        let acc = annotate_cluster_sized(
            c as u32,
            index.cluster_size(c),
            10,
            &mut rng,
            &mut pilot_annotator,
        );
        observations.push((acc, index.cluster_size(c) as u32));
    }
    let pilot = PilotVariance::from_pilot(&observations).expect("pilot has >= 2 clusters");
    let best =
        optimal_m_from_pilot(&pilot, CostModel::default(), 0.05, 0.05, 20).expect("valid search");
    println!(
        "pilot ({} clusters, {:.2} h): between-var {:.4}, within-var {:.4} -> optimal m = {} (predicted {:.1} h)\n",
        observations.len(),
        pilot_annotator.hours(),
        pilot.between,
        pilot.within,
        best.m,
        best.cost_seconds / 3600.0,
    );

    // --- Step 2: full evaluation with each design ------------------------
    let config = EvalConfig::default();
    for (name, evaluator) in [
        ("SRS            ", Evaluator::srs()),
        ("WCS            ", Evaluator::wcs()),
        ("TWCS(m*)       ", Evaluator::twcs(best.m)),
        (
            "TWCS+size strat",
            Evaluator::twcs_size_stratified(best.m, 4),
        ),
    ] {
        let mut rng = StdRng::seed_from_u64(99);
        let report = evaluator
            .run_with_index(index.clone(), oracle, &config, &mut rng)
            .expect("non-empty population");
        println!("{name}: {}", report.summary());
    }
}

//! End-to-end integration tests: dataset generation → sampling designs →
//! iterative framework → reports, across crates.

use kg_accuracy_eval::annotate::oracle::true_accuracy;
use kg_accuracy_eval::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn nell_twcs_meets_contract_and_is_accurate() {
    let ds = DatasetProfile::nell().generate(1);
    let config = EvalConfig::default();
    let mut rng = StdRng::seed_from_u64(5);
    let report = Evaluator::twcs(5)
        .run(&ds.population, ds.oracle.as_ref(), &config, &mut rng)
        .unwrap();
    assert!(report.converged, "{}", report.summary());
    assert!(report.moe <= config.target_moe);
    assert!(
        (report.estimate.mean - 0.91).abs() < 0.06,
        "{}",
        report.summary()
    );
    assert!(report.ci.contains(report.estimate.mean));
    assert!(report.cost_seconds > 0.0);
    // Eq. 4 bookkeeping: cost = |E'|·c1 + |G'|·c2 with the default model.
    let expect = report.entities_identified as f64 * 45.0 + report.triples_annotated as f64 * 25.0;
    assert!((report.cost_seconds - expect).abs() < 1e-6);
}

#[test]
fn all_static_designs_agree_on_movie_scale_kg() {
    let ds = DatasetProfile::movie().scaled(0.02).generate(2);
    let truth = true_accuracy(&ds.population, ds.oracle.as_ref());
    let config = EvalConfig::default();
    for (i, eval) in [
        Evaluator::srs(),
        Evaluator::wcs(),
        Evaluator::twcs(5),
        Evaluator::twcs_size_stratified(5, 4),
    ]
    .into_iter()
    .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(40 + i as u64);
        let report = eval
            .run(&ds.population, ds.oracle.as_ref(), &config, &mut rng)
            .unwrap();
        assert!(report.converged, "{}", report.summary());
        assert!(
            (report.estimate.mean - truth).abs() < 0.07,
            "{} vs truth {truth}",
            report.summary()
        );
    }
}

#[test]
fn moe_coverage_holds_across_designs_and_trials() {
    // The statistical contract: |μ̂ − μ| ≤ ε in ≳ 1−α of runs.
    let ds = DatasetProfile::movie().scaled(0.01).generate(3);
    let truth = true_accuracy(&ds.population, ds.oracle.as_ref());
    let config = EvalConfig::default();
    for eval in [Evaluator::srs(), Evaluator::twcs(5)] {
        let mut hits = 0;
        let reps = 120;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let report = eval
                .run(&ds.population, ds.oracle.as_ref(), &config, &mut rng)
                .unwrap();
            if (report.estimate.mean - truth).abs() <= config.target_moe {
                hits += 1;
            }
        }
        let coverage = hits as f64 / reps as f64;
        assert!(
            coverage >= 0.90,
            "{}: coverage {coverage}",
            eval.design().name()
        );
    }
}

#[test]
fn twcs_beats_srs_cost_on_clustered_kgs() {
    let ds = DatasetProfile::movie().scaled(0.02).generate(4);
    let config = EvalConfig::default();
    let mut srs_total = 0.0;
    let mut twcs_total = 0.0;
    for seed in 0..25 {
        let mut rng = StdRng::seed_from_u64(seed);
        srs_total += Evaluator::srs()
            .run(&ds.population, ds.oracle.as_ref(), &config, &mut rng)
            .unwrap()
            .cost_seconds;
        let mut rng = StdRng::seed_from_u64(seed + 1000);
        twcs_total += Evaluator::twcs(5)
            .run(&ds.population, ds.oracle.as_ref(), &config, &mut rng)
            .unwrap()
            .cost_seconds;
    }
    assert!(
        twcs_total < srs_total * 0.9,
        "TWCS {twcs_total} should undercut SRS {srs_total} by >10%"
    );
}

#[test]
fn evaluation_is_deterministic_given_seeds() {
    let ds = DatasetProfile::nell().generate(9);
    let config = EvalConfig::default();
    let run = || {
        let mut rng = StdRng::seed_from_u64(77);
        Evaluator::twcs(5)
            .run(&ds.population, ds.oracle.as_ref(), &config, &mut rng)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.estimate.mean, b.estimate.mean);
    assert_eq!(a.cost_seconds, b.cost_seconds);
    assert_eq!(a.units, b.units);
}

#[test]
fn tighter_targets_cost_more() {
    let ds = DatasetProfile::movie().scaled(0.02).generate(6);
    let cost_at = |eps: f64| {
        let config = EvalConfig::default().with_target_moe(eps);
        let mut rng = StdRng::seed_from_u64(3);
        Evaluator::twcs(5)
            .run(&ds.population, ds.oracle.as_ref(), &config, &mut rng)
            .unwrap()
            .cost_seconds
    };
    let loose = cost_at(0.10);
    let tight = cost_at(0.02);
    assert!(tight > loose * 2.0, "tight {tight} vs loose {loose}");
}

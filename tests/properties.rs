//! Property-based tests (proptest) on the statistical core: estimator
//! unbiasedness, sampler invariants, stratification partitions, and
//! variance formulas under arbitrary populations.

use kg_accuracy_eval::annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_accuracy_eval::annotate::cost::CostModel;
use kg_accuracy_eval::annotate::oracle::{cluster_accuracies, true_accuracy, GoldLabels};
use kg_accuracy_eval::model::implicit::{ClusterPopulation, ImplicitKg};
use kg_accuracy_eval::model::triple::TripleRef;
use kg_accuracy_eval::sampling::design::StaticDesign;
use kg_accuracy_eval::sampling::twcs::TwcsDesign;
use kg_accuracy_eval::sampling::variance::PopulationTruth;
use kg_accuracy_eval::sampling::PopulationIndex;
use kg_accuracy_eval::stats::srswor::sample_without_replacement;
use kg_accuracy_eval::stats::stratify::{assign_strata, cum_sqrt_f_boundaries};
use kg_accuracy_eval::stats::{AliasTable, RunningMoments};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Arbitrary small labeled population: cluster sizes 1..12, labels i.i.d.
fn arb_population() -> impl Strategy<Value = (Vec<u32>, Vec<Vec<bool>>)> {
    prop::collection::vec(1u32..12, 3..40).prop_flat_map(|sizes| {
        let label_strategies: Vec<_> = sizes
            .iter()
            .map(|&s| prop::collection::vec(any::<bool>(), s as usize))
            .collect();
        (Just(sizes), label_strategies)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn twcs_estimator_is_unbiased((sizes, labels) in arb_population(), m in 1usize..6) {
        let kg = ImplicitKg::new(sizes).unwrap();
        let gold = GoldLabels::new(labels);
        let truth = true_accuracy(&kg, &gold);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        // Average the estimator over replications; must approach truth.
        let reps = 300;
        let mut acc = RunningMoments::new();
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = TwcsDesign::new(idx.clone(), m);
            let mut a = SimulatedAnnotator::new(&gold, CostModel::default());
            d.draw(&mut rng, &mut a, 20);
            acc.push(d.estimate().mean);
        }
        // 5 standard errors of slack.
        let tol = 5.0 * acc.std_error() + 1e-9;
        prop_assert!(
            (acc.mean() - truth).abs() <= tol,
            "mean {} vs truth {} (tol {})", acc.mean(), truth, tol
        );
    }

    #[test]
    fn v_of_m_matches_definition_and_monotonicity((sizes, labels) in arb_population()) {
        let kg = ImplicitKg::new(sizes.clone()).unwrap();
        let gold = GoldLabels::new(labels);
        let accs = cluster_accuracies(&kg, &gold);
        let truth = PopulationTruth::new(sizes, accs).unwrap();
        let mut prev = f64::INFINITY;
        for m in 1..10 {
            let v = truth.v_of_m(m);
            prop_assert!(v >= 0.0);
            prop_assert!(v <= prev + 1e-12, "V({m})={v} > V({})={prev}", m - 1);
            prev = v;
        }
    }

    #[test]
    fn srswor_draws_distinct_in_range(n in 1usize..300, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let k = ((n as f64 * frac) as usize).min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = sample_without_replacement(&mut rng, n, k);
        prop_assert_eq!(sample.len(), k);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(sample.iter().all(|&i| i < n));
    }

    #[test]
    fn alias_table_never_emits_zero_weight(weights in prop::collection::vec(0.0f64..10.0, 2..50), seed in any::<u64>()) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
        }
    }

    #[test]
    fn cum_sqrt_f_is_a_partition(values in prop::collection::vec(1u64..200, 1..300), h in 1usize..6) {
        let bounds = cum_sqrt_f_boundaries(&values, h).unwrap();
        prop_assert!(!bounds.is_empty() && bounds.len() <= h);
        // Contiguous and covering.
        for w in bounds.windows(2) {
            prop_assert_eq!(w[0].hi, w[1].lo);
        }
        prop_assert_eq!(bounds.last().unwrap().hi, u64::MAX);
        let assignment = assign_strata(&values, &bounds);
        for (v, s) in values.iter().zip(&assignment) {
            prop_assert!(bounds[*s].contains(*v));
        }
    }

    #[test]
    fn annotator_cost_is_batching_invariant((sizes, labels) in arb_population(), seed in any::<u64>()) {
        let kg = ImplicitKg::new(sizes).unwrap();
        let gold = GoldLabels::new(labels);
        // A random multiset of refs (with repeats).
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let refs: Vec<TripleRef> = (0..30)
            .map(|_| {
                let c = rng.gen_range(0..kg.num_clusters());
                let o = rng.gen_range(0..kg.cluster_size(c));
                TripleRef::new(c as u32, o as u32)
            })
            .collect();
        let mut all_at_once = SimulatedAnnotator::new(&gold, CostModel::default());
        all_at_once.annotate(&refs);
        let mut one_by_one = SimulatedAnnotator::new(&gold, CostModel::default());
        for r in &refs {
            one_by_one.annotate_one(*r);
        }
        prop_assert_eq!(all_at_once.seconds(), one_by_one.seconds());
        prop_assert_eq!(all_at_once.triples_annotated(), one_by_one.triples_annotated());
        prop_assert_eq!(all_at_once.entities_identified(), one_by_one.entities_identified());
    }

    #[test]
    fn population_index_addresses_every_triple(sizes in prop::collection::vec(1u32..20, 1..60)) {
        let idx = PopulationIndex::from_sizes(sizes.clone()).unwrap();
        let mut count = 0u64;
        for (c, &s) in sizes.iter().enumerate() {
            for o in 0..s {
                let global = count;
                let r = idx.triple_at(global);
                prop_assert_eq!(r.cluster as usize, c);
                prop_assert_eq!(r.offset, o);
                count += 1;
            }
        }
        prop_assert_eq!(count, idx.total_triples());
    }
}

//! Integration tests for evolving-KG evaluation: RS and SS across update
//! streams, with cost and estimate invariants.

use kg_accuracy_eval::annotate::cost::CostModel;
use kg_accuracy_eval::datagen::evolve::UpdateGenerator;
use kg_accuracy_eval::eval::dynamic::monitor::run_sequence;
use kg_accuracy_eval::eval::dynamic::IncrementalEvaluator;
use kg_accuracy_eval::model::update::UpdateBatch;
use kg_accuracy_eval::prelude::*;
use kg_accuracy_eval::stats::PointEstimate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn base() -> kg_accuracy_eval::datagen::profile::Dataset {
    DatasetProfile::movie().scaled(0.01).generate(1)
}

#[test]
fn rs_and_ss_track_truth_over_a_stream() {
    let ds = base();
    let config = EvalConfig::default();
    let batches = UpdateGenerator::movie_like().sequence(8, ds.population.total_triples() / 10, 5);

    // RS.
    let mut rng = StdRng::seed_from_u64(1);
    let mut annotator = SimulatedAnnotator::new(ds.oracle.as_ref(), CostModel::default());
    let mut rs =
        ReservoirEvaluator::evaluate_base(&ds.population, 60, 5, config, &mut annotator, &mut rng);
    let rs_out = run_sequence(&mut rs, &batches, config.alpha, &mut annotator, &mut rng);

    // SS.
    let mut rng = StdRng::seed_from_u64(2);
    let report = Evaluator::twcs(5)
        .run(&ds.population, ds.oracle.as_ref(), &config, &mut rng)
        .unwrap();
    let mut annotator = SimulatedAnnotator::new(ds.oracle.as_ref(), CostModel::default());
    let mut ss = StratifiedIncremental::from_base(&ds.population, report.estimate, 5, config);
    let ss_out = run_sequence(&mut ss, &batches, config.alpha, &mut annotator, &mut rng);

    for (r, s) in rs_out.iter().zip(&ss_out) {
        assert!(
            r.moe <= config.target_moe + 1e-9,
            "RS batch {} moe {}",
            r.batch,
            r.moe
        );
        assert!(
            s.moe <= config.target_moe + 1e-9,
            "SS batch {} moe {}",
            s.batch,
            s.moe
        );
        assert!(
            (r.estimate.mean - 0.9).abs() < 0.07,
            "RS {}",
            r.estimate.mean
        );
        assert!(
            (s.estimate.mean - 0.9).abs() < 0.07,
            "SS {}",
            s.estimate.mean
        );
    }
    // Monotone cumulative costs, non-negative increments.
    for w in rs_out.windows(2) {
        assert!(w[1].cumulative_cost_seconds >= w[0].cumulative_cost_seconds);
    }
}

#[test]
fn incremental_cost_is_far_below_reevaluation() {
    let ds = base();
    let config = EvalConfig::default();
    let delta = UpdateGenerator::movie_like().batch(ds.population.total_triples() / 10, 9);

    // Static re-evaluation of the evolved KG (the Baseline of Fig. 8).
    let (evolved, _) = delta.apply_to(&ds.population);
    let mut rng = StdRng::seed_from_u64(3);
    let baseline = Evaluator::twcs(5)
        .run(&evolved, ds.oracle.as_ref(), &config, &mut rng)
        .unwrap();

    // SS absorbing the same update.
    let mut rng = StdRng::seed_from_u64(4);
    let report = Evaluator::twcs(5)
        .run(&ds.population, ds.oracle.as_ref(), &config, &mut rng)
        .unwrap();
    let mut annotator = SimulatedAnnotator::new(ds.oracle.as_ref(), CostModel::default());
    let mut ss = StratifiedIncremental::from_base(&ds.population, report.estimate, 5, config);
    ss.apply_update(&delta, &mut annotator, &mut rng);

    assert!(
        annotator.seconds() < baseline.cost_seconds * 0.6,
        "SS {} should be well below baseline {}",
        annotator.seconds(),
        baseline.cost_seconds
    );
}

#[test]
fn ss_estimate_reflects_mixed_accuracy_updates() {
    use kg_accuracy_eval::annotate::oracle::RemOracle;
    use kg_accuracy_eval::annotate::PiecewiseOracle;

    let ds = base();
    let n0 = ds.population.num_clusters() as u32;
    let config = EvalConfig::default();
    // One big bad update: half the KG size at 20% accuracy.
    let delta = UpdateGenerator::movie_like().batch(ds.population.total_triples() / 2, 11);
    let mut oracle = PiecewiseOracle::new(Box::new(RemOracle::new(0.9, 1)));
    oracle.push_segment(n0, Box::new(RemOracle::new(0.2, 2)));

    let base_est = PointEstimate::new(0.9, 0.0004, 40).unwrap();
    let mut ss = StratifiedIncremental::from_base(&ds.population, base_est, 5, config);
    let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
    let mut rng = StdRng::seed_from_u64(12);
    let est = ss.apply_update(&delta, &mut annotator, &mut rng);
    // Weighted truth: (2/3)·0.9 + (1/3)·0.2 ≈ 0.667.
    assert!((est.mean - 0.667).abs() < 0.06, "estimate {}", est.mean);
}

#[test]
fn reservoir_replacements_follow_log_growth() {
    let ds = base();
    let config = EvalConfig::default();
    let mut rng = StdRng::seed_from_u64(21);
    let mut annotator = SimulatedAnnotator::new(ds.oracle.as_ref(), CostModel::default());
    let mut rs =
        ReservoirEvaluator::evaluate_base(&ds.population, 50, 5, config, &mut annotator, &mut rng);
    let n0 = ds.population.num_clusters() as f64;
    let before = rs.replacements();
    // Triple the cluster count in one update.
    let delta = UpdateBatch::from_sizes(vec![3; 2 * ds.population.num_clusters()]).unwrap();
    rs.apply_update(&delta, &mut annotator, &mut rng);
    let growth = (rs.replacements() - before) as f64;
    // Proposition 3: ≈ |R|·ln(N_j/N_i); weighted keys distort the constant,
    // so assert the generous envelope.
    let expected = 50.0 * ((3.0 * n0) / n0).ln();
    assert!(
        growth < 3.0 * expected + 20.0,
        "replacements {growth} vs Prop. 3 bound {expected}"
    );
}

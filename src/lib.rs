//! # kg-accuracy-eval — umbrella crate
//!
//! Facade re-exporting the full public API of the KG accuracy-evaluation
//! workspace, a production-quality reproduction of *Efficient Knowledge
//! Graph Accuracy Evaluation* (Gao et al., VLDB 2019).
//!
//! Quick start:
//!
//! ```
//! use kg_accuracy_eval::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A synthetic MOVIE-like KG whose true accuracy is 90%.
//! let profile = DatasetProfile::movie();
//! let dataset = profile.generate(7);
//!
//! // Evaluate with two-stage weighted cluster sampling until the margin of
//! // error drops below 5% at 95% confidence.
//! let config = EvalConfig::default();
//! let mut rng = StdRng::seed_from_u64(42);
//! let report = Evaluator::twcs(5)
//!     .run(&dataset.population, dataset.oracle.as_ref(), &config, &mut rng)
//!     .unwrap();
//!
//! assert!(report.moe <= config.target_moe);
//! assert!((report.estimate.mean - 0.90).abs() < 0.10);
//! ```

pub use kg_annotate as annotate;
pub use kg_baselines as baselines;
pub use kg_datagen as datagen;
pub use kg_eval as eval;
pub use kg_model as model;
pub use kg_sampling as sampling;
pub use kg_stats as stats;

/// One-stop imports for typical usage.
pub mod prelude {
    pub use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
    pub use kg_annotate::cost::CostModel;
    pub use kg_annotate::dense::DenseAnnotator;
    pub use kg_annotate::label_store::LabelStore;
    pub use kg_annotate::lease::DenseArenaPool;
    pub use kg_annotate::oracle::{BmmOracle, GoldLabels, LabelOracle, RemOracle};
    pub use kg_datagen::profile::DatasetProfile;
    pub use kg_eval::config::EvalConfig;
    pub use kg_eval::dynamic::reservoir::ReservoirEvaluator;
    pub use kg_eval::dynamic::stratified::StratifiedIncremental;
    pub use kg_eval::executor::TrialExecutor;
    pub use kg_eval::framework::{Evaluator, TrialAggregate};
    pub use kg_eval::report::EvaluationReport;
    pub use kg_model::graph::KnowledgeGraph;
    pub use kg_model::implicit::{ClusterPopulation, ImplicitKg};
    pub use kg_sampling::design::{Design, StaticDesign};
    pub use kg_stats::{ConfidenceInterval, PointEstimate};
}
